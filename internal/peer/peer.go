// Package peer assembles the three validator peer flavors of the paper's
// experimental setup (Figure 8) and its software-parallel extension:
//
//   - SWPeer: a software-only validator (sw_validator) — gossip intake,
//     validation pipeline, state database and ledger.
//
//   - ParallelPeer: the software parallel commit engine
//     (internal/pipeline) — the same Fabric semantics as SWPeer but with
//     pipelined stages and dependency-scheduled intra-block parallelism.
//
//   - BMacPeer: the hardware-accelerated peer — the BMac protocol receiver
//     and block processor "in hardware" (internal/bmacproto +
//     internal/core), with the host CPU only reading validation results
//     from the reg_map and committing blocks to the disk ledger. Hardware
//     validation of block n+1 overlaps with the CPU's ledger commit of
//     block n (paper §3.1).
//
// The software peers are durable: every validated block is appended to the
// disk ledger before its result is reported, reopening a peer directory
// replays the ledger (on top of the newest state checkpoint) so a
// restarted peer resumes at its previous height, and a checkpoint cadence
// can bound how much of the ledger a restart has to replay (durable.go).
package peer

import (
	"errors"
	"fmt"
	"sync"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/core"
	"bmac/internal/identity"
	"bmac/internal/ledger"
	"bmac/internal/pipeline"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// CommitResult is reported by a peer for every committed block.
type CommitResult struct {
	BlockNum   uint64
	BlockValid bool
	Flags      []byte
	CommitHash []byte
	// HWStats is populated by BMac peers only.
	HWStats core.Stats
	// Breakdown is populated by the software peers (SWPeer, ParallelPeer)
	// so callers can compare per-stage timings.
	Breakdown validator.Breakdown
}

// SWPeer is a software-only validator peer.
type SWPeer struct {
	Validator *validator.Validator
	Ledger    *ledger.Ledger

	dir       string
	ckptEvery int
	ckptKeep  int          // checkpoint generations retained (0 = statedb default)
	prune     bool         // prune checkpoint-covered ledger segments
	ckptFault func() error // fault-injection hook for checkpoint writes
}

// NewSWPeer creates a software peer with an in-memory state database and a
// ledger in dir. Reopening an existing dir recovers: the ledger is
// replayed (on top of any checkpoint) so the peer resumes at its previous
// height. See NewDurableSWPeer to choose the backend and checkpoint
// cadence.
func NewSWPeer(cfg validator.Config, dir string) (*SWPeer, error) {
	return NewDurableSWPeer(cfg, statedb.NewStore(), dir, DurableOptions{})
}

// CommitBlock validates and commits one received block (the gossip path
// hands blocks here in order). When a checkpoint cadence is configured,
// the block's commit may be followed by a state checkpoint; a checkpoint
// failure is returned even though the block itself committed, because the
// peer's durability contract is broken.
func (p *SWPeer) CommitBlock(b *block.Block) (CommitResult, error) {
	res, err := p.Validator.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		return CommitResult{}, err
	}
	if err := maybeCheckpoint(p.ckptEvery, res.BlockNum, p.Checkpoint); err != nil {
		return CommitResult{}, err
	}
	return CommitResult{
		BlockNum:   res.BlockNum,
		BlockValid: res.BlockValid,
		Flags:      res.Flags,
		CommitHash: res.CommitHash,
		Breakdown:  res.Breakdown,
	}, nil
}

// Close releases the ledger.
func (p *SWPeer) Close() error { return p.Ledger.Close() }

// ParallelPeer is a software validator peer backed by the parallel
// pipelined commit engine.
type ParallelPeer struct {
	Engine *pipeline.Engine
	Ledger *ledger.Ledger

	dir       string
	ckptEvery int
	ckptKeep  int          // checkpoint generations retained (0 = statedb default)
	prune     bool         // prune checkpoint-covered ledger segments
	ckptFault func() error // fault-injection hook for checkpoint writes
}

// NewParallelPeer creates a parallel peer with an in-memory state database
// and a ledger in dir. Reopening an existing dir recovers, as with
// NewSWPeer.
func NewParallelPeer(cfg pipeline.Config, dir string) (*ParallelPeer, error) {
	return NewParallelPeerKVS(cfg, statedb.NewStore(), dir)
}

// NewParallelPeerKVS creates a parallel peer over the given state-database
// backend (plain, sharded or hybrid hardware/host) and a ledger in dir.
// Reopening an existing dir recovers: the ledger is replayed (on top of
// any checkpoint) into kvs, which must be empty. See NewDurableParallelPeer
// to also set the checkpoint cadence.
func NewParallelPeerKVS(cfg pipeline.Config, kvs statedb.KVS, dir string) (*ParallelPeer, error) {
	return NewDurableParallelPeer(cfg, kvs, dir, DurableOptions{})
}

// CommitBlock validates and commits one received block. The engine still
// parallelizes the stages internally; use Submit/Results on the Engine
// directly for inter-block pipelining (the periodic checkpoint policy only
// runs on this synchronous path).
func (p *ParallelPeer) CommitBlock(b *block.Block) (CommitResult, error) {
	res, err := p.Engine.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		return CommitResult{}, err
	}
	if err := maybeCheckpoint(p.ckptEvery, res.BlockNum, p.Checkpoint); err != nil {
		return CommitResult{}, err
	}
	return CommitResult{
		BlockNum:   res.BlockNum,
		BlockValid: res.BlockValid,
		Flags:      res.Flags,
		CommitHash: res.CommitHash,
		Breakdown:  res.Breakdown,
	}, nil
}

// Close drains the engine and releases the ledger.
func (p *ParallelPeer) Close() error {
	p.Engine.Close()
	return p.Ledger.Close()
}

// BMacPeer is the hardware-accelerated validator peer.
type BMacPeer struct {
	Cache    *identity.Cache
	Bufs     *bmacproto.Buffers
	Receiver *bmacproto.Receiver
	Proc     *core.Processor
	Ledger   *ledger.Ledger

	results chan CommitResult
	errs    chan error
	done    chan struct{}
	closed  sync.Once
}

// NewBMacPeer creates a BMac peer: protocol receiver, block processor with
// the given architecture, hardware KVS, and a CPU-side ledger in dir.
func NewBMacPeer(cfg core.Config, dbCapacity int, dir string) (*BMacPeer, error) {
	led, err := ledger.Open(dir, ledger.Options{})
	if err != nil {
		return nil, fmt.Errorf("bmac peer ledger: %w", err)
	}
	cache := identity.NewCache()
	bufs := bmacproto.NewBuffers()
	p := &BMacPeer{
		Cache:    cache,
		Bufs:     bufs,
		Receiver: bmacproto.NewReceiver(cache, bufs),
		Proc:     core.New(cfg, bufs, statedb.NewHardwareKVS(dbCapacity)),
		Ledger:   led,
		results:  make(chan CommitResult, 16),
		errs:     make(chan error, 1),
		done:     make(chan struct{}),
	}
	p.Proc.Start()
	go p.commitLoop()
	return p, nil
}

// ProcessPacket feeds one network packet into the hardware receiver.
func (p *BMacPeer) ProcessPacket(data []byte) error {
	err := p.Receiver.ProcessPacket(data)
	if err != nil && !errors.Is(err, bmacproto.ErrNotBMac) {
		return err
	}
	return nil
}

// Results delivers one CommitResult per committed block, in order.
func (p *BMacPeer) Results() <-chan CommitResult { return p.results }

// Err reports a fatal commit-loop error, if any.
func (p *BMacPeer) Err() error {
	select {
	case err := <-p.errs:
		return err
	default:
		return nil
	}
}

// commitLoop is the CPU side of the BMac peer (left half of Figure 4b): it
// receives the reconstructed block from the protocol processor, reads the
// validation result from the hardware through GetBlockData, merges the
// flags into the block, and commits it to the disk ledger. While this loop
// is writing block n, the hardware pipeline is already validating n+1.
func (p *BMacPeer) commitLoop() {
	defer close(p.done)
	defer close(p.results)
	for ab := range p.Receiver.Blocks() {
		res, ok := p.Proc.GetBlockData()
		if !ok {
			return
		}
		if res.BlockNum != ab.Block.Header.Number {
			p.fail(fmt.Errorf("bmac peer: result for block %d but assembled block %d",
				res.BlockNum, ab.Block.Header.Number))
			return
		}
		blockValid := res.BlockValid && ab.DataHashOK
		flags := res.Flags
		if !ab.DataHashOK {
			flags = make([]byte, len(res.Flags))
			for i := range flags {
				flags[i] = byte(block.InvalidOther)
			}
		}
		ab.Block.Metadata.ValidationFlags = flags
		ch, err := p.Ledger.Commit(ab.Block)
		if err != nil {
			p.fail(fmt.Errorf("bmac peer commit block %d: %w", res.BlockNum, err))
			return
		}
		p.results <- CommitResult{
			BlockNum:   res.BlockNum,
			BlockValid: blockValid,
			Flags:      flags,
			CommitHash: ch,
			HWStats:    res.Stats,
		}
	}
}

func (p *BMacPeer) fail(err error) {
	select {
	case p.errs <- err:
	default:
	}
}

// Close shuts down the pipeline and waits for the commit loop to drain.
func (p *BMacPeer) Close() error {
	var err error
	p.closed.Do(func() {
		p.Bufs.Close()
		p.Proc.Wait()
		p.Receiver.Close()
		<-p.done
		err = p.Ledger.Close()
	})
	return err
}
