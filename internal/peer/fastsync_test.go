package peer

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// Fast-sync recovery tests: generation fallback, the full-replay baseline
// mode, and pruned-ledger restarts.

// TestRecoveryFallsBackOnCorruptNewestCheckpoint: clobbering the newest
// checkpoint generation costs extra replay (the older generation anchors
// recovery), never the peer — and the recovered state is bit-identical.
func TestRecoveryFallsBackOnCorruptNewestCheckpoint(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 6)
	cfg := validator.Config{Workers: 2, Policies: f.pols}

	dir := t.TempDir()
	p, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir, DurableOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := p.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	want := statedb.SnapshotHash(p.Validator.Store().Snapshot())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	refs, _ := statedb.Checkpoints(dir, "")
	if len(refs) < 2 {
		t.Fatalf("need >= 2 generations to test fallback, have %+v", refs)
	}
	newest := filepath.Join(dir, refs[0].File)
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir, DurableOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatalf("recovery with a corrupt newest generation: %v", err)
	}
	defer p2.Close()
	if p2.Height() != 6 {
		t.Fatalf("recovered height %d, want 6", p2.Height())
	}
	if got := statedb.SnapshotHash(p2.Validator.Store().Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery diverges from live state")
	}
}

// TestNoFastSyncRecoversIdentically: the full-replay measurement baseline
// (oldest checkpoint + maximal tail) must land on the same state as
// fast-sync — it only pays more replay.
func TestNoFastSyncRecoversIdentically(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 6)
	cfg := validator.Config{Workers: 2, Policies: f.pols}

	dir := t.TempDir()
	p, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir, DurableOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := p.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	want := statedb.SnapshotHash(p.Validator.Store().Snapshot())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir,
		DurableOptions{CheckpointEvery: 2, NoFastSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Height() != 6 {
		t.Fatalf("recovered height %d, want 6", p2.Height())
	}
	if got := statedb.SnapshotHash(p2.Validator.Store().Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("full-replay recovery diverges from fast-sync state")
	}
}

// TestPruneBoundsLedgerAndSurvivesRestart: with pruning on and a tiny
// segment budget, checkpoint-covered segments are dropped (the prune floor
// advances), the restart fast-syncs from a retained generation above the
// floor, and the chain keeps extending.
func TestPruneBoundsLedgerAndSurvivesRestart(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 10)
	cfg := validator.Config{Workers: 2, Policies: f.pols}
	opts := DurableOptions{CheckpointEvery: 2, SegmentBytes: 1, Prune: true}

	dir := t.TempDir()
	p, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[:8] {
		if _, err := p.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if p.Ledger.Base() == 0 {
		t.Fatal("prune floor never advanced despite covering checkpoints")
	}
	if p.Ledger.Stats().Pruned == 0 {
		t.Fatal("no segments pruned")
	}
	want := statedb.SnapshotHash(p.Validator.Store().Snapshot())
	base := p.Ledger.Base()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Far fewer segment files than blocks committed: disk is bounded.
	files, err := filepath.Glob(filepath.Join(dir, "blockfile_*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) >= 8 {
		t.Fatalf("%d segment files survive pruning for 8 one-block segments", len(files))
	}

	p2, err := NewDurableSWPeer(cfg, statedb.NewStore(), dir, opts)
	if err != nil {
		t.Fatalf("restart of a pruned peer: %v", err)
	}
	defer p2.Close()
	if p2.Height() != 8 || p2.Ledger.Base() != base {
		t.Fatalf("recovered height %d base %d, want 8 and %d", p2.Height(), p2.Ledger.Base(), base)
	}
	if got := statedb.SnapshotHash(p2.Validator.Store().Snapshot()); !bytes.Equal(got, want) {
		t.Fatal("pruned restart diverges from live state")
	}
	for _, b := range blocks[8:] {
		if _, err := p2.CommitBlock(b); err != nil {
			t.Fatalf("commit after pruned restart: %v", err)
		}
	}
}
