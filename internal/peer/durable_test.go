package peer

import (
	"bytes"
	"fmt"
	"testing"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/pipeline"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// chainFixture builds deterministic block chains with a mix of valid and
// invalid transactions, so replay has real validation flags to honor.
type chainFixture struct {
	client  *identity.Identity
	orderer *identity.Identity
	end     *identity.Identity
	pols    map[string]*policy.Policy
}

func newChainFixture(t *testing.T) *chainFixture {
	t.Helper()
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := net.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	orderer, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	end, err := net.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	return &chainFixture{
		client:  client,
		orderer: orderer,
		end:     end,
		pols:    map[string]*policy.Policy{"cc": policytest.MustParse("1of1")},
	}
}

// chain builds n blocks of 4 transactions each: writes to rotating keys,
// occasional stale reads (mvcc invalidations) and corrupt signatures
// (vscc invalidations), chained by previous hash.
func (f *chainFixture) chain(t *testing.T, n int) []*block.Block {
	t.Helper()
	var out []*block.Block
	var prev []byte
	for bn := uint64(0); bn < uint64(n); bn++ {
		envs := make([]block.Envelope, 0, 4)
		for i := 0; i < 4; i++ {
			rw := block.RWSet{Writes: []block.KVWrite{{
				Key:   fmt.Sprintf("acct%d", i),
				Value: []byte{byte(bn), byte(i)},
			}}}
			spec := block.TxSpec{
				Creator: f.client, Chaincode: "cc", Channel: "ch",
				RWSet: rw, Endorsers: []*identity.Identity{f.end},
			}
			if bn > 1 && i == 1 {
				// Stale read: endorsed against a version two blocks old.
				spec.RWSet.Reads = []block.KVRead{{
					Key:     "acct1",
					Version: block.Version{BlockNum: bn - 2, TxNum: 1},
				}}
			}
			if i == 3 && bn%2 == 1 {
				spec.CorruptClientSig = true
			}
			env, err := block.NewEndorsedEnvelope(spec)
			if err != nil {
				t.Fatal(err)
			}
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(bn, prev, envs, f.orderer)
		if err != nil {
			t.Fatal(err)
		}
		prev = block.HeaderHash(&b.Header)
		out = append(out, b)
	}
	return out
}

// TestSWPeerRestartReplaysLedger is the core recovery contract, without
// checkpoints: a restarted peer replays its whole ledger and ends with a
// state hash and commit hash identical to a peer that never stopped, then
// keeps committing on the same chain.
func TestSWPeerRestartReplaysLedger(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 6)
	cfg := validator.Config{Workers: 2, Policies: f.pols}

	refPeer, err := NewSWPeer(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer refPeer.Close()

	dir := t.TempDir()
	p, err := NewSWPeer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[:4] {
		if _, err := refPeer.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
		if _, err := p.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: ledger replay only (no checkpoint was ever written).
	p2, err := NewSWPeer(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Height() != 4 {
		t.Fatalf("recovered height = %d, want 4", p2.Height())
	}
	wantState := statedb.SnapshotHash(refPeer.Validator.Store().Snapshot())
	if got := statedb.SnapshotHash(p2.Validator.Store().Snapshot()); !bytes.Equal(got, wantState) {
		t.Fatal("replayed state hash diverges from live-commit state hash")
	}

	// The chain continues: both peers commit the remaining blocks and stay
	// bit-identical.
	for _, b := range blocks[4:] {
		refRes, err := refPeer.CommitBlock(b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p2.CommitBlock(b)
		if err != nil {
			t.Fatalf("commit after restart: %v", err)
		}
		if !bytes.Equal(refRes.CommitHash, res.CommitHash) {
			t.Fatalf("block %d: commit hash diverges after restart", b.Header.Number)
		}
	}
	if !statedb.SnapshotsEqual(refPeer.Validator.Store().Snapshot(), p2.Validator.Store().Snapshot()) {
		t.Error("states diverge after post-restart commits")
	}
	if !bytes.Equal(refPeer.Ledger.LastCommitHash(), p2.Ledger.LastCommitHash()) {
		t.Error("ledger commit hash chains diverge")
	}
}

// TestDurablePeerCheckpointSuffixReplay proves the checkpoint shortcut:
// with CheckpointEvery=2 over 5 blocks, a restart loads the block-3
// checkpoint and replays only the suffix — and the result is identical to
// a full replay. Runs the matrix of both engines and all three statedb
// backends.
func TestDurablePeerCheckpointSuffixReplay(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 5)

	type build func(dir string, every int) (commit func(*block.Block) (CommitResult, error),
		snap func() map[string]statedb.VersionedValue, height func() uint64, close func() error, err error)

	kvsFor := func(backend string) statedb.KVS {
		switch backend {
		case "sharded":
			return statedb.NewShardedStore(4)
		case "hybrid":
			return statedb.NewHybridKVS(8, statedb.NewStore())
		default:
			return statedb.NewStore()
		}
	}
	builders := map[string]func(backend string) build{
		"sw": func(backend string) build {
			return func(dir string, every int) (func(*block.Block) (CommitResult, error),
				func() map[string]statedb.VersionedValue, func() uint64, func() error, error) {
				p, err := NewDurableSWPeer(validator.Config{Workers: 2, Policies: f.pols},
					kvsFor(backend), dir, DurableOptions{CheckpointEvery: every})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				return p.CommitBlock, func() map[string]statedb.VersionedValue { return p.Validator.Store().Snapshot() },
					p.Height, p.Close, nil
			}
		},
		"parallel": func(backend string) build {
			return func(dir string, every int) (func(*block.Block) (CommitResult, error),
				func() map[string]statedb.VersionedValue, func() uint64, func() error, error) {
				p, err := NewDurableParallelPeer(pipeline.Config{Workers: 2, Policies: f.pols},
					kvsFor(backend), dir, DurableOptions{CheckpointEvery: every})
				if err != nil {
					return nil, nil, nil, nil, err
				}
				return p.CommitBlock, func() map[string]statedb.VersionedValue { return p.Engine.Store().Snapshot() },
					p.Height, p.Close, nil
			}
		},
	}

	for engine, mk := range builders {
		for _, backend := range []string{"memory", "sharded", "hybrid"} {
			t.Run(engine+"/"+backend, func(t *testing.T) {
				dir := t.TempDir()
				commit, snap, _, closeFn, err := mk(backend)(dir, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range blocks {
					if _, err := commit(b); err != nil {
						t.Fatal(err)
					}
				}
				want := statedb.SnapshotHash(snap())
				if err := closeFn(); err != nil {
					t.Fatal(err)
				}

				// The block-3 checkpoint generation must exist and restrict
				// replay to the suffix.
				refs, _ := statedb.Checkpoints(dir, "")
				if len(refs) == 0 {
					t.Fatal("no periodic checkpoint generation")
				}
				_, h, err := statedb.LoadCheckpoint(dir + "/" + refs[0].File)
				if err != nil {
					t.Fatalf("no periodic checkpoint: %v", err)
				}
				if h != 4 {
					t.Errorf("checkpoint height = %d, want 4 (after block 3)", h)
				}

				commit2, snap2, height2, closeFn2, err := mk(backend)(dir, 2)
				if err != nil {
					t.Fatalf("restart: %v", err)
				}
				defer closeFn2()
				if height2() != 5 {
					t.Fatalf("recovered height = %d, want 5", height2())
				}
				if got := statedb.SnapshotHash(snap2()); !bytes.Equal(got, want) {
					t.Fatal("checkpoint + suffix replay diverges from live state")
				}
				_ = commit2
			})
		}
	}
}

// TestRecoverStateRejectsCheckpointAheadOfLedger pins the safety check: a
// checkpoint claiming more blocks than the ledger holds cannot recover.
func TestRecoverStateRejectsCheckpointAheadOfLedger(t *testing.T) {
	f := newChainFixture(t)
	blocks := f.chain(t, 2)
	dir := t.TempDir()
	p, err := NewDurableSWPeer(validator.Config{Workers: 1, Policies: f.pols},
		statedb.NewStore(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := p.CommitBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint claiming height 7 against a 2-block ledger.
	if err := statedb.SaveCheckpoint(dir+"/"+CheckpointFile, p.Validator.Store(), 7); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSWPeer(validator.Config{Workers: 1, Policies: f.pols}, dir); err == nil {
		t.Fatal("checkpoint ahead of ledger accepted")
	}
}
