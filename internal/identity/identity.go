// Package identity implements the membership layer of the Blockchain Machine
// reproduction: organizations, node roles, per-node X.509 identities, and the
// 16-bit encoded identity scheme the BMac protocol uses to strip repeated
// certificates out of blocks.
//
// An encoded ID packs, per Section 3.2 of the paper:
//
//	bits 15..8  organization number
//	bits  7..4  role (orderer, admin, peer, client)
//	bits  3..0  node sequence number within its organization
//
// e.g. Org1.Peer0 encodes as org=1, role=peer, seq=0.
package identity

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bmac/internal/fabcrypto"
)

// Role is one of the predefined Fabric node roles.
type Role uint8

// Predefined roles, 4 bits each in the encoded ID. Values start at 1 so the
// zero EncodedID is never a valid identity.
const (
	RoleOrderer Role = iota + 1
	RoleAdmin
	RolePeer
	RoleClient
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleOrderer:
		return "orderer"
	case RoleAdmin:
		return "admin"
	case RolePeer:
		return "peer"
	case RoleClient:
		return "client"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// EncodedID is the 16-bit compact identity used on the wire by the BMac
// protocol and in the hardware endorsement-policy register file.
type EncodedID uint16

// Encode packs org, role and seq into an EncodedID.
func Encode(org uint8, role Role, seq uint8) EncodedID {
	return EncodedID(uint16(org)<<8 | uint16(role&0xf)<<4 | uint16(seq&0xf))
}

// Org returns the organization number (bits 15..8).
func (id EncodedID) Org() uint8 { return uint8(id >> 8) }

// Role returns the role (bits 7..4).
func (id EncodedID) Role() Role { return Role(uint8(id>>4) & 0xf) }

// Seq returns the node sequence number within its org (bits 3..0).
func (id EncodedID) Seq() uint8 { return uint8(id) & 0xf }

// String renders e.g. "Org1.Peer0".
func (id EncodedID) String() string {
	return fmt.Sprintf("Org%d.%s%d", id.Org(), roleTitle(id.Role()), id.Seq())
}

func roleTitle(r Role) string {
	switch r {
	case RoleOrderer:
		return "Orderer"
	case RoleAdmin:
		return "Admin"
	case RolePeer:
		return "Peer"
	case RoleClient:
		return "Client"
	default:
		return "Role?"
	}
}

// Identity is one network node: its certificate (the Fabric identity), its
// signing key, and its compact encoding.
type Identity struct {
	Name    string // e.g. "peer0.org1.example.com"
	OrgName string // e.g. "Org1"
	ID      EncodedID
	Cert    []byte // DER X.509 certificate (~860 bytes)
	signer  *fabcrypto.Signer
	pub     *ecdsa.PublicKey
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) ([]byte, error) {
	if id.signer == nil {
		return nil, fmt.Errorf("identity %s: no private key", id.Name)
	}
	return id.signer.Sign(msg)
}

// SignDigest signs a precomputed digest.
func (id *Identity) SignDigest(digest []byte) ([]byte, error) {
	if id.signer == nil {
		return nil, fmt.Errorf("identity %s: no private key", id.Name)
	}
	return id.signer.SignDigest(digest)
}

// PublicKey returns the identity's public key.
func (id *Identity) PublicKey() *ecdsa.PublicKey { return id.pub }

// Org is an organization with a certificate authority and member nodes.
type Org struct {
	Name    string
	Number  uint8
	caKey   *fabcrypto.Signer
	caCert  []byte
	nextSeq map[Role]uint8
	serial  int64
}

// Network is the set of organizations and identities in a Fabric network.
// It acts as the membership service provider: it issues certificates and
// maintains the canonical identity list used to initialize identity caches.
type Network struct {
	mu    sync.RWMutex
	orgs  map[string]*Org         // guarded by mu
	byID  map[EncodedID]*Identity // guarded by mu
	byCN  map[string]*Identity    // guarded by mu
	order []EncodedID             // guarded by mu; issue order, for deterministic iteration
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		orgs: make(map[string]*Org),
		byID: make(map[EncodedID]*Identity),
		byCN: make(map[string]*Identity),
	}
}

// ErrUnknownIdentity reports a lookup for an identity the network has not issued.
var ErrUnknownIdentity = errors.New("identity: unknown identity")

// AddOrg creates an organization with its own CA. Organization numbers are
// assigned in creation order starting at 1, matching the paper's Org1..OrgN.
func (n *Network) AddOrg(name string) (*Org, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.orgs[name]; ok {
		return nil, fmt.Errorf("identity: org %q already exists", name)
	}
	num := uint8(len(n.orgs) + 1)
	caKey, err := fabcrypto.NewSigner()
	if err != nil {
		return nil, fmt.Errorf("org %s CA key: %w", name, err)
	}
	caCert, err := fabcrypto.IssueCertificate(fabcrypto.CertTemplate{
		CommonName:   "ca." + name,
		Organization: name,
		IsCA:         true,
		SerialNumber: 1,
	}, caKey.Public(), nil, caKey.Private())
	if err != nil {
		return nil, fmt.Errorf("org %s CA cert: %w", name, err)
	}
	org := &Org{
		Name:    name,
		Number:  num,
		caKey:   caKey,
		caCert:  caCert,
		nextSeq: make(map[Role]uint8),
		serial:  2,
	}
	n.orgs[name] = org
	return org, nil
}

// NewIdentity issues a fresh identity in org with the given role. Node
// sequence numbers are assigned per (org, role) starting at 0 (Org1.Peer0).
func (n *Network) NewIdentity(orgName string, role Role) (*Identity, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	org, ok := n.orgs[orgName]
	if !ok {
		return nil, fmt.Errorf("identity: org %q does not exist", orgName)
	}
	seq := org.nextSeq[role]
	if seq > 0xf {
		return nil, fmt.Errorf("identity: org %q exhausted %s sequence numbers", orgName, role)
	}
	org.nextSeq[role] = seq + 1

	signer, err := fabcrypto.NewSigner()
	if err != nil {
		return nil, fmt.Errorf("identity key: %w", err)
	}
	name := fmt.Sprintf("%s%d.%s", role, seq, orgName)
	caCert, err := fabcrypto.ParseCertificate(org.caCert)
	if err != nil {
		return nil, err
	}
	cert, err := fabcrypto.IssueCertificate(fabcrypto.CertTemplate{
		CommonName:   name,
		Organization: orgName,
		SerialNumber: org.serial,
	}, signer.Public(), caCert, org.caKey.Private())
	if err != nil {
		return nil, err
	}
	org.serial++

	id := &Identity{
		Name:    name,
		OrgName: orgName,
		ID:      Encode(org.Number, role, seq),
		Cert:    cert,
		signer:  signer,
		pub:     signer.Public(),
	}
	n.byID[id.ID] = id
	n.byCN[name] = id
	n.order = append(n.order, id.ID)
	return id, nil
}

// Lookup returns the identity for an encoded ID.
func (n *Network) Lookup(id EncodedID) (*Identity, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ident, ok := n.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownIdentity, id)
	}
	return ident, nil
}

// LookupByName returns the identity with the given common name.
func (n *Network) LookupByName(name string) (*Identity, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ident, ok := n.byCN[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, name)
	}
	return ident, nil
}

// OrgNumber returns the number assigned to the named organization.
func (n *Network) OrgNumber(name string) (uint8, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	org, ok := n.orgs[name]
	if !ok {
		return 0, fmt.Errorf("identity: org %q does not exist", name)
	}
	return org.Number, nil
}

// OrgNames returns the organization names sorted by org number.
func (n *Network) OrgNames() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	names := make([]string, 0, len(n.orgs))
	for name := range n.orgs {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return n.orgs[names[i]].Number < n.orgs[names[j]].Number
	})
	return names
}

// Identities returns all issued identities in issue order.
func (n *Network) Identities() []*Identity {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Identity, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.byID[id])
	}
	return out
}

// Cache is the identity cache shared between the BMac protocol sender
// (DataRemover) and the hardware receiver (DataInserter). It maps full
// certificates to encoded IDs and back. The sender half assigns IDs for
// previously unseen certificates; the receiver half is populated by cache
// synchronization packets.
type Cache struct {
	mu       sync.RWMutex
	certToID map[string]EncodedID           // guarded by mu
	idToCert map[EncodedID][]byte           // guarded by mu
	idToPub  map[EncodedID]*ecdsa.PublicKey // guarded by mu
	misses   int                            // guarded by mu
	hits     int                            // guarded by mu
}

// NewCache returns an empty identity cache.
func NewCache() *Cache {
	return &Cache{
		certToID: make(map[string]EncodedID),
		idToCert: make(map[EncodedID][]byte),
		idToPub:  make(map[EncodedID]*ecdsa.PublicKey),
	}
}

// Preload inserts every identity of a network; used to initialize the
// hardware cache from the YAML configuration, as the paper's setup script does.
func (c *Cache) Preload(n *Network) error {
	for _, id := range n.Identities() {
		if err := c.Put(id.ID, id.Cert); err != nil {
			return err
		}
	}
	return nil
}

// Put inserts or updates the mapping id <-> cert.
func (c *Cache) Put(id EncodedID, cert []byte) error {
	pub, err := fabcrypto.PublicKeyFromCert(cert)
	if err != nil {
		return fmt.Errorf("cache put %s: %w", id, err)
	}
	certCopy := make([]byte, len(cert))
	copy(certCopy, cert)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.certToID[string(cert)] = id
	c.idToCert[id] = certCopy
	c.idToPub[id] = pub
	return nil
}

// IDForCert returns the encoded ID for a certificate, reporting whether the
// certificate was present. Sender side of DataRemover.
func (c *Cache) IDForCert(cert []byte) (EncodedID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.certToID[string(cert)]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return id, ok
}

// CertForID returns the certificate for an encoded ID. Receiver side of
// DataInserter.
func (c *Cache) CertForID(id EncodedID) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cert, ok := c.idToCert[id]
	return cert, ok
}

// PublicKeyForID returns the cached public key for an encoded ID, letting
// the hardware skip X.509 parsing on the hot path.
func (c *Cache) PublicKeyForID(id EncodedID) (*ecdsa.PublicKey, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pub, ok := c.idToPub[id]
	return pub, ok
}

// Len reports the number of cached identities.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.idToCert)
}

// Stats reports cache hits and misses observed by IDForCert.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}
