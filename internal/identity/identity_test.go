package identity

import (
	"errors"
	"testing"
	"testing/quick"

	"bmac/internal/fabcrypto"
)

func TestEncodedIDPacking(t *testing.T) {
	tests := []struct {
		org  uint8
		role Role
		seq  uint8
		str  string
	}{
		{1, RolePeer, 0, "Org1.Peer0"},
		{2, RoleOrderer, 3, "Org2.Orderer3"},
		{255, RoleClient, 15, "Org255.Client15"},
		{4, RoleAdmin, 7, "Org4.Admin7"},
	}
	for _, tt := range tests {
		id := Encode(tt.org, tt.role, tt.seq)
		if id.Org() != tt.org || id.Role() != tt.role || id.Seq() != tt.seq {
			t.Errorf("Encode(%d,%v,%d) unpacked to (%d,%v,%d)",
				tt.org, tt.role, tt.seq, id.Org(), id.Role(), id.Seq())
		}
		if id.String() != tt.str {
			t.Errorf("String() = %q, want %q", id.String(), tt.str)
		}
	}
}

func TestEncodedIDQuick(t *testing.T) {
	f := func(org uint8, roleRaw uint8, seq uint8) bool {
		role := Role(roleRaw%4 + 1)
		seq &= 0xf
		id := Encode(org, role, seq)
		return id.Org() == org && id.Role() == role && id.Seq() == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedIDsUniqueAcrossNetwork(t *testing.T) {
	n := NewNetwork()
	for _, org := range []string{"Org1", "Org2", "Org3", "Org4"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[EncodedID]bool)
	for _, org := range n.OrgNames() {
		for _, role := range []Role{RoleOrderer, RolePeer, RolePeer, RoleClient} {
			id, err := n.NewIdentity(org, role)
			if err != nil {
				t.Fatal(err)
			}
			if seen[id.ID] {
				t.Errorf("duplicate encoded ID %s", id.ID)
			}
			seen[id.ID] = true
		}
	}
	if len(seen) != 16 {
		t.Errorf("issued %d identities, want 16", len(seen))
	}
}

func TestNetworkIssueAndLookup(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	peer, err := n.NewIdentity("Org1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	if peer.Name != "peer0.Org1" {
		t.Errorf("name = %q", peer.Name)
	}
	if peer.ID != Encode(1, RolePeer, 0) {
		t.Errorf("ID = %s", peer.ID)
	}

	got, err := n.Lookup(peer.ID)
	if err != nil || got != peer {
		t.Errorf("Lookup: %v", err)
	}
	got, err = n.LookupByName("peer0.Org1")
	if err != nil || got != peer {
		t.Errorf("LookupByName: %v", err)
	}
	if _, err := n.Lookup(Encode(9, RolePeer, 9)); !errors.Is(err, ErrUnknownIdentity) {
		t.Errorf("unknown lookup err = %v", err)
	}
}

func TestDuplicateOrgRejected(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddOrg("Org1"); err == nil {
		t.Error("expected duplicate org error")
	}
}

func TestIdentityCertificateVerifies(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	id, err := n.NewIdentity("Org1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := id.Sign([]byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := fabcrypto.PublicKeyFromCert(id.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := fabcrypto.Verify(pub, []byte("msg"), sig); err != nil {
		t.Errorf("signature under cert key: %v", err)
	}
}

func TestCachePutLookup(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	id, err := n.NewIdentity("Org1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	if _, ok := c.IDForCert(id.Cert); ok {
		t.Error("empty cache claims to contain cert")
	}
	if err := c.Put(id.ID, id.Cert); err != nil {
		t.Fatal(err)
	}
	got, ok := c.IDForCert(id.Cert)
	if !ok || got != id.ID {
		t.Errorf("IDForCert = %v, %v", got, ok)
	}
	cert, ok := c.CertForID(id.ID)
	if !ok || string(cert) != string(id.Cert) {
		t.Error("CertForID mismatch")
	}
	if _, ok := c.PublicKeyForID(id.ID); !ok {
		t.Error("PublicKeyForID missing")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", hits, misses)
	}
}

func TestCachePreload(t *testing.T) {
	n := NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
		if _, err := n.NewIdentity(org, RolePeer); err != nil {
			t.Fatal(err)
		}
		if _, err := n.NewIdentity(org, RoleOrderer); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache()
	if err := c.Preload(n); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Errorf("cache len = %d, want 4", c.Len())
	}
}

func TestCacheRejectsGarbageCert(t *testing.T) {
	c := NewCache()
	if err := c.Put(Encode(1, RolePeer, 0), []byte("not a cert")); err == nil {
		t.Error("expected error for garbage certificate")
	}
}

func TestSequenceExhaustion(t *testing.T) {
	n := NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := n.NewIdentity("Org1", RoleClient); err != nil {
			t.Fatalf("identity %d: %v", i, err)
		}
	}
	if _, err := n.NewIdentity("Org1", RoleClient); err == nil {
		t.Error("expected sequence exhaustion at 16 clients")
	}
	// Other roles still have room.
	if _, err := n.NewIdentity("Org1", RolePeer); err != nil {
		t.Errorf("peer after client exhaustion: %v", err)
	}
}
