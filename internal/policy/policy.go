// Package policy implements chaincode endorsement policies: the boolean
// expressions over organizations that decide whether a transaction gathered
// enough valid endorsements ("Org1 & Org2", "2-outof-3 orgs", or arbitrary
// OR-of-AND forms).
//
// Two evaluation strategies are provided, mirroring the two systems the
// paper compares:
//
//   - The software evaluator reproduces Fabric's behaviour: every
//     endorsement of a transaction is signature-verified regardless of the
//     policy, and sub-expressions are evaluated sequentially (Section 4.3:
//     "Fabric always verifies all the endorsements of a transaction,
//     irrespective of the policy", and complex policies "evaluate all
//     sub-expressions sequentially").
//
//   - The Circuit evaluator reproduces the hardware
//     ends_policy_evaluator: the policy is compiled into a combinational
//     circuit over a register file (one register per organization, one bit
//     per role), evaluated in parallel in a single step, enabling the
//     ends_scheduler's short-circuit evaluation that skips unnecessary
//     endorsement verifications.
package policy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bmac/internal/identity"
)

// Expr is a node of an endorsement policy expression tree.
type Expr interface {
	// String renders the canonical textual form of the expression.
	String() string
	// eval reports whether the expression is satisfied by the set of
	// (org, role) endorsements marked valid in the register file.
	eval(rf *RegisterFile) bool
	// gates accumulates the AND/OR gate counts of the compiled circuit.
	gates(g *GateCount)
	// orgs accumulates the set of organizations referenced.
	orgs(set map[uint8]bool)
}

// OrgRef is a leaf: an endorsement by a specific organization (peer role,
// as in the paper's examples).
type OrgRef struct {
	Org  uint8
	Role identity.Role
}

// String implements Expr.
func (o OrgRef) String() string { return fmt.Sprintf("Org%d", o.Org) }

func (o OrgRef) eval(rf *RegisterFile) bool { return rf.Get(o.Org, o.Role) }

func (o OrgRef) gates(g *GateCount) { g.Inputs++ }

func (o OrgRef) orgs(set map[uint8]bool) { set[o.Org] = true }

// And requires all children to be satisfied.
type And struct{ Children []Expr }

// String implements Expr.
func (a And) String() string { return joinExprs(a.Children, " & ") }

func (a And) eval(rf *RegisterFile) bool {
	// Deliberately no short-circuit: evaluate every child, then combine.
	// The software path models Fabric's exhaustive evaluation; hardware
	// combinational circuits also evaluate all inputs in parallel.
	ok := true
	for _, c := range a.Children {
		if !c.eval(rf) {
			ok = false
		}
	}
	return ok
}

func (a And) gates(g *GateCount) {
	if len(a.Children) > 1 {
		g.AndGates++
		g.AndInputs += len(a.Children)
	}
	for _, c := range a.Children {
		c.gates(g)
	}
}

func (a And) orgs(set map[uint8]bool) {
	for _, c := range a.Children {
		c.orgs(set)
	}
}

// Or requires at least one child to be satisfied.
type Or struct{ Children []Expr }

// String implements Expr.
func (o Or) String() string { return joinExprs(o.Children, " | ") }

func (o Or) eval(rf *RegisterFile) bool {
	ok := false
	for _, c := range o.Children {
		if c.eval(rf) {
			ok = true
		}
	}
	return ok
}

func (o Or) gates(g *GateCount) {
	if len(o.Children) > 1 {
		g.OrGates++
		g.OrInputs += len(o.Children)
	}
	for _, c := range o.Children {
		c.gates(g)
	}
}

func (o Or) orgs(set map[uint8]bool) {
	for _, c := range o.Children {
		c.orgs(set)
	}
}

func joinExprs(children []Expr, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		s := c.String()
		if strings.ContainsAny(s, "&|") {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// GateCount tallies the combinational circuit footprint of a compiled
// policy; feeds the FPGA resource model in internal/hwsim.
type GateCount struct {
	AndGates  int
	AndInputs int
	OrGates   int
	OrInputs  int
	Inputs    int
}

// RegisterFile is the hardware register file of the ends_policy_evaluator:
// one register per organization, one bit per predefined role. It records
// which endorsements have verified successfully so far for the transaction
// currently in a tx_vscc instance.
type RegisterFile struct {
	regs [256]uint8 // index: org number; bit index: role
}

// Clear resets every register; called by tx_vscc when a new transaction starts.
func (rf *RegisterFile) Clear() { rf.regs = [256]uint8{} }

// Set records a valid endorsement from (org, role).
func (rf *RegisterFile) Set(org uint8, role identity.Role) {
	rf.regs[org] |= 1 << (uint8(role) - 1)
}

// SetID records a valid endorsement from an encoded identity.
func (rf *RegisterFile) SetID(id identity.EncodedID) {
	rf.Set(id.Org(), id.Role())
}

// Get reports whether a valid endorsement from (org, role) was recorded.
func (rf *RegisterFile) Get(org uint8, role identity.Role) bool {
	return rf.regs[org]&(1<<(uint8(role)-1)) != 0
}

// Policy is a parsed endorsement policy.
type Policy struct {
	Name string // textual source, e.g. "2of3"
	Expr Expr
}

// ErrParse reports a syntactically invalid policy string.
var ErrParse = errors.New("policy: parse error")

// Parse parses a policy expression. Grammar:
//
//	expr   := term ('|' term)*
//	term   := factor ('&' factor)*
//	factor := '(' expr ')' | ORG | OUTOF
//	ORG    := "Org" N [ "." ROLE ]
//	OUTOF  := N ("-outof-" | "of") M ["orgs"]   e.g. "2-outof-3 orgs", "2of3"
//
// An OUTOF form expands to the OR of all M-choose-N AND combinations over
// Org1..OrgM (peer role), exactly how the paper describes "2-outof-3 orgs"
// compiling to "(Org1 & Org2) | (Org1 & Org3) | (Org2 & Org3)".
func Parse(src string) (*Policy, error) {
	p := &parser{src: src, toks: tokenize(src)}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: trailing input %q in %q", ErrParse, p.toks[p.pos], src)
	}
	return &Policy{Name: src, Expr: expr}, nil
}

// Orgs returns the sorted set of organization numbers referenced.
func (p *Policy) Orgs() []uint8 {
	set := make(map[uint8]bool)
	p.Expr.orgs(set)
	out := make([]uint8, 0, len(set))
	for o := byte(1); o != 0; o++ { // 1..255 in order
		if set[o] {
			out = append(out, o)
		}
	}
	return out
}

// MaxEndorsements returns the number of distinct orgs referenced — the
// number of endorsements a client gathers for a transaction under this
// policy (one per referenced org, as in the paper's experiments).
func (p *Policy) MaxEndorsements() int { return len(p.Orgs()) }

// Gates returns the combinational circuit footprint.
func (p *Policy) Gates() GateCount {
	var g GateCount
	p.Expr.gates(&g)
	return g
}

// EvalSequential is the Fabric-style evaluation: walk the whole expression
// tree with no short-circuit. validOrgs maps org number -> role bits of
// valid endorsements.
func (p *Policy) EvalSequential(rf *RegisterFile) bool {
	return p.Expr.eval(rf)
}

// Circuit is the compiled hardware evaluator for one chaincode's policy.
// Evaluate is a single-cycle combinational read of the register file.
type Circuit struct {
	policy *Policy
	gates  GateCount
}

// Compile builds the combinational circuit for a policy; in hardware this
// is the generated ends_policy_evaluator module for one cc_id.
func Compile(p *Policy) *Circuit {
	return &Circuit{policy: p, gates: p.Gates()}
}

// Evaluate reports whether the policy output is currently high given the
// register file contents. Combinational: conceptually all sub-expressions
// evaluate in parallel.
func (c *Circuit) Evaluate(rf *RegisterFile) bool {
	return c.policy.Expr.eval(rf)
}

// Gates returns the circuit's gate counts.
func (c *Circuit) Gates() GateCount { return c.gates }

// Policy returns the source policy.
func (c *Circuit) Policy() *Policy { return c.policy }

// CanStillSatisfy reports whether the policy could still become satisfied
// if every org in `remaining` later produced a valid endorsement. The
// ends_scheduler uses this for the invalidity short-circuit: once false,
// the transaction is invalid and remaining endorsements are discarded.
func (c *Circuit) CanStillSatisfy(rf *RegisterFile, remaining []identity.EncodedID) bool {
	// Evaluate optimistically: copy the register file and set all
	// remaining endorsers' bits.
	opt := *rf
	for _, id := range remaining {
		opt.SetID(id)
	}
	return c.policy.Expr.eval(&opt)
}

// --- parser ---

type parser struct {
	src  string
	toks []string
	pos  int
}

func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '&' || c == '|':
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n()&|", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == "|" {
		p.next()
		c, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		children = append(children, c)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return Or{Children: children}, nil
}

func (p *parser) parseTerm() (Expr, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	children := []Expr{first}
	for p.peek() == "&" {
		p.next()
		c, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		children = append(children, c)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return And{Children: children}, nil
}

func (p *parser) parseFactor() (Expr, error) {
	tok := p.next()
	switch {
	case tok == "":
		return nil, fmt.Errorf("%w: unexpected end of input in %q", ErrParse, p.src)
	case tok == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("%w: missing ')' in %q", ErrParse, p.src)
		}
		return e, nil
	case strings.HasPrefix(strings.ToLower(tok), "org"):
		return parseOrgRef(tok)
	default:
		return p.parseOutOf(tok)
	}
}

func parseOrgRef(tok string) (Expr, error) {
	rest := tok[3:]
	role := identity.RolePeer
	if dot := strings.IndexByte(rest, '.'); dot >= 0 {
		switch strings.ToLower(rest[dot+1:]) {
		case "peer":
			role = identity.RolePeer
		case "admin":
			role = identity.RoleAdmin
		case "orderer":
			role = identity.RoleOrderer
		case "client":
			role = identity.RoleClient
		default:
			return nil, fmt.Errorf("%w: unknown role in %q", ErrParse, tok)
		}
		rest = rest[:dot]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 || n > 255 {
		return nil, fmt.Errorf("%w: bad org reference %q", ErrParse, tok)
	}
	return OrgRef{Org: uint8(n), Role: role}, nil
}

// parseOutOf handles "2-outof-3", "2of3", and "2-outof-3 orgs" (the "orgs"
// suffix arrives as the following token and is consumed if present).
func (p *parser) parseOutOf(tok string) (Expr, error) {
	lower := strings.ToLower(tok)
	var kStr, mStr string
	switch {
	case strings.Contains(lower, "-outof-"):
		parts := strings.SplitN(lower, "-outof-", 2)
		kStr, mStr = parts[0], parts[1]
	case strings.Contains(lower, "of"):
		parts := strings.SplitN(lower, "of", 2)
		kStr, mStr = parts[0], parts[1]
	default:
		return nil, fmt.Errorf("%w: unrecognized token %q", ErrParse, tok)
	}
	k, err1 := strconv.Atoi(kStr)
	m, err2 := strconv.Atoi(mStr)
	if err1 != nil || err2 != nil || k < 1 || m < k || m > 16 {
		return nil, fmt.Errorf("%w: bad out-of form %q", ErrParse, tok)
	}
	if strings.EqualFold(p.peek(), "orgs") {
		p.next()
	}
	return expandOutOf(k, m), nil
}

// expandOutOf builds the OR of all C(m,k) AND terms over Org1..Orgm.
func expandOutOf(k, m int) Expr {
	var terms []Expr
	combo := make([]uint8, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(combo) == k {
			refs := make([]Expr, k)
			for i, o := range combo {
				refs[i] = OrgRef{Org: o, Role: identity.RolePeer}
			}
			if k == 1 {
				terms = append(terms, refs[0])
			} else {
				terms = append(terms, And{Children: refs})
			}
			return
		}
		for o := start; o <= m; o++ {
			combo = append(combo, uint8(o))
			rec(o + 1)
			combo = combo[:len(combo)-1]
		}
	}
	rec(1)
	if len(terms) == 1 {
		return terms[0]
	}
	return Or{Children: terms}
}
