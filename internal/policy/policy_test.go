package policy

import (
	"errors"
	"testing"
	"testing/quick"

	"bmac/internal/identity"
)

// mustParse is the in-package equivalent of policytest.MustParse (which
// cannot be imported here without a cycle).
func mustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func rfWith(orgs ...uint8) *RegisterFile {
	var rf RegisterFile
	for _, o := range orgs {
		rf.Set(o, identity.RolePeer)
	}
	return &rf
}

func TestParseSimpleAnd(t *testing.T) {
	p, err := Parse("Org1 & Org2")
	if err != nil {
		t.Fatal(err)
	}
	if !p.EvalSequential(rfWith(1, 2)) {
		t.Error("both orgs should satisfy")
	}
	if p.EvalSequential(rfWith(1)) {
		t.Error("one org should not satisfy AND")
	}
	if got := p.MaxEndorsements(); got != 2 {
		t.Errorf("MaxEndorsements = %d, want 2", got)
	}
}

func TestParseOutOfForms(t *testing.T) {
	for _, src := range []string{"2-outof-3", "2of3", "2-outof-3 orgs"} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if want := "(Org1 & Org2) | (Org1 & Org3) | (Org2 & Org3)"; p.Expr.String() != want {
			t.Errorf("Parse(%q) = %q, want %q", src, p.Expr.String(), want)
		}
	}
}

func TestOutOfSemantics(t *testing.T) {
	p := mustParse("2of3")
	tests := []struct {
		orgs []uint8
		want bool
	}{
		{nil, false},
		{[]uint8{1}, false},
		{[]uint8{1, 2}, true},
		{[]uint8{2, 3}, true},
		{[]uint8{1, 3}, true},
		{[]uint8{1, 2, 3}, true},
		{[]uint8{4, 5}, false},
	}
	for _, tt := range tests {
		if got := p.EvalSequential(rfWith(tt.orgs...)); got != tt.want {
			t.Errorf("2of3 with orgs %v = %v, want %v", tt.orgs, got, tt.want)
		}
	}
}

func TestOneOfOne(t *testing.T) {
	p := mustParse("1of1")
	if !p.EvalSequential(rfWith(1)) || p.EvalSequential(rfWith(2)) {
		t.Error("1of1 semantics wrong")
	}
	if p.MaxEndorsements() != 1 {
		t.Errorf("MaxEndorsements = %d", p.MaxEndorsements())
	}
}

func TestComplexPaperPolicy(t *testing.T) {
	// The "almost but not exactly 2of4" policy from Section 4.3.
	src := "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Org1 & Org3 is the one pair missing from the policy.
	if p.EvalSequential(rfWith(1, 3)) {
		t.Error("Org1&Org3 must NOT satisfy the complex policy")
	}
	for _, pair := range [][]uint8{{1, 2}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		if !p.EvalSequential(rfWith(pair...)) {
			t.Errorf("pair %v must satisfy", pair)
		}
	}
	if p.MaxEndorsements() != 4 {
		t.Errorf("MaxEndorsements = %d, want 4", p.MaxEndorsements())
	}
}

func TestRoleQualifiedRefs(t *testing.T) {
	p, err := Parse("Org1.Admin & Org2.Peer")
	if err != nil {
		t.Fatal(err)
	}
	var rf RegisterFile
	rf.Set(1, identity.RoleAdmin)
	rf.Set(2, identity.RolePeer)
	if !p.EvalSequential(&rf) {
		t.Error("role-qualified refs should match")
	}
	rf.Clear()
	rf.Set(1, identity.RolePeer) // wrong role
	rf.Set(2, identity.RolePeer)
	if p.EvalSequential(&rf) {
		t.Error("peer endorsement must not satisfy an Admin requirement")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "Org1 &", "& Org1", "(Org1", "Org1)", "Orgx", "0of3", "3of2",
		"Org1 Org2", "bogus", "Org1.king",
	} {
		if _, err := Parse(src); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) err = %v, want ErrParse", src, err)
		}
	}
}

func TestGateCounts(t *testing.T) {
	// "2-outof-3 orgs" = three 2-input ANDs and one 3-input OR (paper §3.3).
	p := mustParse("2of3")
	g := p.Gates()
	if g.AndGates != 3 || g.AndInputs != 6 {
		t.Errorf("AND gates = %d/%d inputs, want 3/6", g.AndGates, g.AndInputs)
	}
	if g.OrGates != 1 || g.OrInputs != 3 {
		t.Errorf("OR gates = %d/%d inputs, want 1/3", g.OrGates, g.OrInputs)
	}
	if g.Inputs != 6 {
		t.Errorf("leaf inputs = %d, want 6", g.Inputs)
	}
}

func TestCircuitMatchesSequential(t *testing.T) {
	policies := []string{
		"1of1", "2of2", "3of3", "2of3", "2of4", "3of4", "4of4",
		"(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)",
	}
	for _, src := range policies {
		p := mustParse(src)
		c := Compile(p)
		// Exhaustively compare on all subsets of orgs 1..4.
		for mask := 0; mask < 16; mask++ {
			var orgs []uint8
			for b := 0; b < 4; b++ {
				if mask&(1<<b) != 0 {
					orgs = append(orgs, uint8(b+1))
				}
			}
			rf := rfWith(orgs...)
			if c.Evaluate(rf) != p.EvalSequential(rf) {
				t.Errorf("policy %q mask %04b: circuit != sequential", src, mask)
			}
		}
	}
}

func TestCanStillSatisfy(t *testing.T) {
	c := Compile(mustParse("3of3"))
	var rf RegisterFile
	// Org1's endorsement failed (never set); Org2, Org3 remain.
	remaining := []identity.EncodedID{
		identity.Encode(2, identity.RolePeer, 0),
		identity.Encode(3, identity.RolePeer, 0),
	}
	if c.CanStillSatisfy(&rf, remaining) {
		t.Error("3of3 with Org1 failed can never satisfy")
	}

	c2 := Compile(mustParse("2of3"))
	if !c2.CanStillSatisfy(&rf, remaining) {
		t.Error("2of3 with Org2,Org3 remaining can still satisfy")
	}
}

func TestCanStillSatisfyDoesNotMutate(t *testing.T) {
	c := Compile(mustParse("2of2"))
	var rf RegisterFile
	rf.Set(1, identity.RolePeer)
	c.CanStillSatisfy(&rf, []identity.EncodedID{identity.Encode(2, identity.RolePeer, 0)})
	if rf.Get(2, identity.RolePeer) {
		t.Error("CanStillSatisfy mutated the register file")
	}
	if c.Evaluate(&rf) {
		t.Error("policy must not be satisfied with only Org1")
	}
}

func TestRegisterFileClear(t *testing.T) {
	var rf RegisterFile
	rf.Set(3, identity.RolePeer)
	rf.SetID(identity.Encode(4, identity.RoleAdmin, 2))
	if !rf.Get(3, identity.RolePeer) || !rf.Get(4, identity.RoleAdmin) {
		t.Fatal("set/get broken")
	}
	rf.Clear()
	if rf.Get(3, identity.RolePeer) || rf.Get(4, identity.RoleAdmin) {
		t.Error("clear did not reset registers")
	}
}

// TestOutOfEquivalentToThreshold property-checks the expansion: k-of-m is
// satisfied exactly when >= k of Org1..Orgm endorsed.
func TestOutOfEquivalentToThreshold(t *testing.T) {
	f := func(kRaw, mRaw, maskRaw uint8) bool {
		m := int(mRaw%5) + 1 // 1..5
		k := int(kRaw)%m + 1 // 1..m
		mask := int(maskRaw) & (1<<m - 1)
		p := expandOutOf(k, m)
		var rf RegisterFile
		count := 0
		for b := 0; b < m; b++ {
			if mask&(1<<b) != 0 {
				rf.Set(uint8(b+1), identity.RolePeer)
				count++
			}
		}
		return p.eval(&rf) == (count >= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialEval(b *testing.B) {
	p := mustParse("(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | (Org3 & Org4)")
	rf := rfWith(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EvalSequential(rf)
	}
}

func BenchmarkCircuitEval(b *testing.B) {
	c := Compile(mustParse("2of4"))
	rf := rfWith(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Evaluate(rf)
	}
}
