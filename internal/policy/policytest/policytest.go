// Package policytest provides test helpers for constructing endorsement
// policies from statically known expressions.
package policytest

import "bmac/internal/policy"

// MustParse parses a statically known policy expression, panicking on
// error. It exists for tests and benchmarks only: production code paths
// use policy.Parse and propagate the error, so a malformed policy in a
// configuration can never crash a peer.
func MustParse(src string) *policy.Policy {
	p, err := policy.Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}
