package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live exposition endpoint:
//
//	/metrics          Prometheus text exposition of the registry
//	/trace            the flight recorder's spans as a JSONL stream
//	/debug/pprof/*    the standard Go profiling handlers
//
// It runs on its own mux (never http.DefaultServeMux) so importing this
// package does not globally register pprof, and serves on a dedicated
// listener so a failed bind is reported at startup instead of at first
// scrape.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr and starts serving the registry and recorder (either
// may be nil; the corresponding endpoint then serves empty output).
func NewServer(addr string, reg *Registry, rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w) // bmaclint:allow errdiscard (in-memory buffer write cannot fail)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = rec.WriteJSONL(w) // bmaclint:allow errdiscard (in-memory buffer write cannot fail)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	return s.srv.Close()
}
