// Package telemetry is the process-wide observability plane: a registry of
// atomic counters, gauges and fixed-bucket latency histograms, a per-block
// flight recorder that stamps lifecycle span events, and an opt-in HTTP
// server exposing both live (Prometheus text /metrics, /debug/pprof/*, a
// /trace JSONL stream).
//
// The package follows the repo's zero-cost-when-off discipline (the same
// contract as statedb.SetCountAccesses): every instrument is nil-safe, and a
// disabled telemetry plane is represented by nil pointers everywhere. A hot
// path holding a nil *Counter or nil *Histogram pays exactly one predicted
// branch per call and performs no allocation, no atomic operation and no
// time.Now. Instruments are only non-nil when a Registry exists, and a
// Registry only exists when the telemetry: config section enables it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil Counter is
// valid and ignores all writes.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
// bmaclint:noalloc
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored; counters are monotone).
//
// bmaclint:noalloc
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
//
// bmaclint:noalloc
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil Gauge is valid and ignores
// all writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
//
// bmaclint:noalloc
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the current value by n (may be negative).
//
// bmaclint:noalloc
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
//
// bmaclint:noalloc
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two duration buckets. Bucket i
// covers durations up to 1µs<<i, so the range spans 1µs to ~1.2h, which
// comfortably brackets everything from a cache probe to a stalled
// experiment. Fixed log2 bucketing keeps Observe to two atomic adds and a
// bits.Len64 — no per-observation allocation, sorting or locking.
const histBuckets = 33

// Histogram is a fixed-bucket latency histogram with power-of-two duration
// buckets and atomic counts. Quantile readout returns the upper bound of
// the bucket holding the ceil nearest-rank sample, so reported percentiles
// are conservative (never below the true value) with ≤2x resolution.
// A nil Histogram is valid and ignores all observations.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us) - 1) // ceil(log2(us))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// Observe records one duration.
//
// bmaclint:noalloc
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile returns the upper bucket bound holding the ceil nearest-rank
// sample for percentile p in (0,100]. The true max is returned for the
// final occupied bucket so Quantile(100) == Max.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			// Clamp to the true max: the top occupied bucket's bound can
			// overshoot by up to 2x, and the max is known exactly.
			bound := bucketBound(i)
			if m := time.Duration(h.max.Load()); m < bound {
				return m
			}
			return bound
		}
	}
	return time.Duration(h.max.Load())
}

// HistogramSnapshot is a point-in-time readout of a Histogram.
type HistogramSnapshot struct {
	Count          int64
	Sum, Mean, Max time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot reads the histogram's summary quantiles in one pass.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(50),
		P95:   h.Quantile(95),
		P99:   h.Quantile(99),
	}
}

// Registry is the process-wide instrument table. Instruments are created on
// first use and shared thereafter (get-or-create by name), so any subsystem
// can ask for "its" counter without plumbing instrument handles around.
// GaugeFunc registers a scrape-time callback instead of a stored value —
// the read adapter used to export counters some subsystem already maintains
// (cache hit counts, statedb access counts) with zero hot-path cost.
//
// A nil Registry is valid: every lookup returns a nil instrument, which in
// turn ignores all writes. That chain is what makes disabled telemetry
// free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter     // guarded by mu
	gauges     map[string]*Gauge       // guarded by mu
	histograms map[string]*Histogram   // guarded by mu
	gaugeFuncs map[string]func() int64 // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() int64),
	}
}

// Name renders a metric name with label pairs in Prometheus form:
// Name("x_total", "peer", "p0") == `x_total{peer="p0"}`.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry
// returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil
// registry returns nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// GaugeFunc registers (or replaces) a callback evaluated at scrape time.
// The callback must be safe to call from the scrape goroutine. Nil registry
// and nil fn are no-ops.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// addLabel splices one more label pair into an already-rendered metric
// name: addLabel(`x{a="1"}`, "quantile", "0.5") == `x{a="1",quantile="0.5"}`.
func addLabel(name, k, v string) string {
	if strings.HasSuffix(name, "}") {
		return fmt.Sprintf("%s,%s=%q}", strings.TrimSuffix(name, "}"), k, v)
	}
	return fmt.Sprintf("%s{%s=%q}", name, k, v)
}

// WritePrometheus renders every instrument in Prometheus text exposition
// format, sorted by name for stable output. Histograms export count, sum
// (seconds) and p50/p95/p99 quantile gauges; GaugeFunc callbacks are
// evaluated inline.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	r.mu.Unlock()

	lines := make([]string, 0, len(counters)+len(gauges)+len(funcs)+5*len(hists))
	for n, v := range counters {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range gauges {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, f := range funcs {
		lines = append(lines, fmt.Sprintf("%s %d", n, f()))
	}
	for n, h := range hists {
		s := h.Snapshot()
		lines = append(lines,
			fmt.Sprintf("%s %d", addLabel(n, "stat", "count"), s.Count),
			fmt.Sprintf("%s %g", addLabel(n, "stat", "sum"), s.Sum.Seconds()),
			fmt.Sprintf("%s %g", addLabel(n, "quantile", "0.5"), s.P50.Seconds()),
			fmt.Sprintf("%s %g", addLabel(n, "quantile", "0.95"), s.P95.Seconds()),
			fmt.Sprintf("%s %g", addLabel(n, "quantile", "0.99"), s.P99.Seconds()),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the full Prometheus exposition as a string ("" for nil).
func (r *Registry) Text() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	_ = r.WritePrometheus(&b) // bmaclint:allow errdiscard (in-memory buffer write cannot fail)
	return b.String()
}
