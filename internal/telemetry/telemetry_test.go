package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram readout")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Text() != "" {
		t.Fatal("nil registry text")
	}

	var rec *Recorder
	rec.Stamp(1, StageCommit, "p", time.Now(), time.Now(), 1)
	if rec.Len() != 0 || rec.Events() != nil || rec.Budget() != nil {
		t.Fatal("nil recorder must ignore everything")
	}
	if _, ok := rec.StageEnd(1, StageCommit); ok {
		t.Fatal("nil recorder StageEnd")
	}

	// Nil bundles: every observe is a no-op.
	var vm *ValidatorMetrics
	vm.ObserveBlock(3, 1, 1, 1, 1, 1, 1, 1, 1)
	var om *OrdererMetrics
	om.ObserveBlock(4)
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-2) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds")
	// 100 observations 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Power-of-two buckets: the quantile is the bucket upper bound, so it
	// must be >= the true percentile and < 2x above it.
	for _, tc := range []struct {
		p    float64
		true time.Duration
	}{{50, 50 * time.Millisecond}, {95, 95 * time.Millisecond}, {99, 99 * time.Millisecond}} {
		got := h.Quantile(tc.p)
		if got < tc.true || got > 2*tc.true {
			t.Fatalf("p%.0f = %v, want in [%v, %v]", tc.p, got, tc.true, 2*tc.true)
		}
	}
	// Quantile(100) clamps to the exact max.
	if got := h.Quantile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100*time.Millisecond || s.P50 < 50*time.Millisecond {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean < 50*time.Millisecond || s.Mean > 51*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	// One sample: every quantile is that sample (clamped to true max).
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Quantile(p); got != 3*time.Millisecond {
			t.Fatalf("p%v = %v, want 3ms", p, got)
		}
	}
	h.Observe(0) // sub-microsecond lands in bucket 0
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if got := h.Quantile(50); got > time.Microsecond {
		t.Fatalf("p50 after tiny sample = %v", got)
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {time.Nanosecond, 0}, {time.Microsecond, 0},
		{2 * time.Microsecond, 1}, {3 * time.Microsecond, 2}, {4 * time.Microsecond, 2},
		{time.Millisecond, 10}, {time.Second, 20}, {2 * time.Hour, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketFor(tc.d); got != tc.want {
			t.Fatalf("bucketFor(%v) = %d, want %d", tc.d, got, tc.want)
		}
		if tc.d > 0 && bucketBound(bucketFor(tc.d)) < tc.d && bucketFor(tc.d) != histBuckets-1 {
			t.Fatalf("bound(bucketFor(%v)) = %v below the value", tc.d, bucketBound(bucketFor(tc.d)))
		}
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatal(got)
	}
	if got := Name("x_total", "peer", "p0"); got != `x_total{peer="p0"}` {
		t.Fatal(got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatal(got)
	}
	if got := addLabel(`x{a="1"}`, "q", "0.5"); got != `x{a="1",q="0.5"}` {
		t.Fatal(got)
	}
	if got := addLabel("x", "q", "0.5"); got != `x{q="0.5"}` {
		t.Fatal(got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(9)
	r.GaugeFunc("f_gauge", func() int64 { return 42 })
	r.Histogram(Name("lat_seconds", "stage", "vscc")).Observe(2 * time.Millisecond)

	text := r.Text()
	for _, want := range []string{
		"a_gauge 9\n",
		"b_total 2\n",
		"f_gauge 42\n",
		`lat_seconds{stage="vscc",stat="count"} 1`,
		`lat_seconds{stage="vscc",quantile="0.5"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Stable: sorted output.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("output not sorted at line %d:\n%s", i, text)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_seconds").Observe(time.Duration(j) * time.Microsecond)
				r.Gauge(fmt.Sprintf("g%d", i)).Set(int64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = r.Text()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("shared_total").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
}

func TestRecorderBudget(t *testing.T) {
	rec := NewRecorder()
	base := rec.epoch
	// Two blocks, contiguous spans: 10ms submit→endorse→commit tiling a
	// 30ms e2e each; one extra block without e2e (in flight) ignored.
	for blk := uint64(0); blk < 2; blk++ {
		t0 := base.Add(time.Duration(blk) * 50 * time.Millisecond)
		rec.Stamp(blk, StageSubmit, "", t0, t0.Add(10*time.Millisecond), 4)
		rec.Stamp(blk, StageEndorse, "", t0.Add(10*time.Millisecond), t0.Add(20*time.Millisecond), 0)
		rec.Stamp(blk, StageCommit, "peer0", t0.Add(20*time.Millisecond), t0.Add(30*time.Millisecond), 0)
		rec.Stamp(blk, StageE2E, "peer0", t0, t0.Add(30*time.Millisecond), 4)
	}
	rec.Stamp(9, StageSubmit, "", base, base.Add(time.Millisecond), 1)

	if end, ok := rec.StageEnd(0, StageEndorse); !ok || end.Sub(base) != 20*time.Millisecond {
		t.Fatalf("StageEnd = %v ok=%v", end.Sub(base), ok)
	}
	if st, ok := rec.StageStart(1, StageSubmit); !ok || st.Sub(base) != 50*time.Millisecond {
		t.Fatalf("StageStart = %v ok=%v", st.Sub(base), ok)
	}

	b := rec.Budget()
	if b.Blocks != 2 {
		t.Fatalf("blocks = %d", b.Blocks)
	}
	if b.E2E != 60*time.Millisecond || b.Covered != 60*time.Millisecond {
		t.Fatalf("e2e=%v covered=%v", b.E2E, b.Covered)
	}
	if b.Coverage < 0.999 || b.Coverage > 1.001 {
		t.Fatalf("coverage = %v", b.Coverage)
	}
	if len(b.Stages) != 3 {
		t.Fatalf("stages = %+v", b.Stages)
	}
	if b.Stages[0].Stage != StageSubmit || b.Stages[1].Stage != StageEndorse || b.Stages[2].Stage != StageCommit {
		t.Fatalf("stage order = %+v", b.Stages)
	}
	for _, st := range b.Stages {
		if st.Total != 20*time.Millisecond {
			t.Fatalf("stage %s total = %v", st.Stage, st.Total)
		}
	}
	if s := b.String(); !strings.Contains(s, "coverage 100.0%") || !strings.Contains(s, "submit") {
		t.Fatalf("budget string:\n%s", s)
	}
}

func TestRecorderClampsNegativeSpans(t *testing.T) {
	rec := NewRecorder()
	now := time.Now()
	rec.Stamp(0, StageOrder, "", now, now.Add(-time.Second), 0)
	evs := rec.Events()
	if len(evs) != 1 || evs[0].DurUS != 0 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder()
	now := time.Now()
	rec.Stamp(3, StageVSCC, "peer1", now, now.Add(250*time.Microsecond), 16)
	rec.Stamp(3, StageMVCC, "peer1", now.Add(250*time.Microsecond), now.Add(300*time.Microsecond), 0)

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("lines = %d", len(got))
	}
	if got[0].Stage != StageVSCC || got[0].Block != 3 || got[0].Txs != 16 || got[0].DurUS != 250 {
		t.Fatalf("event = %+v", got[0])
	}
	if got[1].StartUS != got[0].StartUS+got[0].DurUS {
		t.Fatalf("spans not contiguous: %+v", got)
	}
}

func TestRecorderConcurrentStamp(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			now := time.Now()
			for j := 0; j < 100; j++ {
				rec.Stamp(uint64(j), StageDeliver, fmt.Sprintf("p%d", i), now, now.Add(time.Millisecond), 0)
				rec.StageEnd(uint64(j), StageDeliver)
			}
		}(i)
	}
	go rec.Budget()
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("len = %d", rec.Len())
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	rec := NewRecorder()
	now := time.Now()
	rec.Stamp(0, StageCommit, "p0", now, now.Add(time.Millisecond), 2)

	srv, err := NewServer("127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.SplitN(get("/trace"), "\n", 2)[0]), &ev); err != nil {
		t.Fatalf("/trace not JSONL: %v", err)
	}
	if ev.Stage != StageCommit {
		t.Fatalf("trace event = %+v", ev)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestViewsObserve(t *testing.T) {
	r := NewRegistry()
	vm := NewValidatorMetrics(r, "sequential")
	vm.ObserveBlock(8, time.Millisecond, time.Millisecond, 2*time.Millisecond,
		500*time.Microsecond, time.Millisecond, 300*time.Microsecond, 0, 6*time.Millisecond)
	if vm.Blocks.Value() != 1 || vm.Txs.Value() != 8 {
		t.Fatalf("validator counters: blocks=%d txs=%d", vm.Blocks.Value(), vm.Txs.Value())
	}
	if vm.VerifyVSCC.Count() != 1 {
		t.Fatal("vscc histogram")
	}

	om := NewOrdererMetrics(r)
	om.ObserveBlock(16)
	om.SizeCuts.Inc()
	if om.Blocks.Value() != 1 || om.Txs.Value() != 16 {
		t.Fatal("orderer counters")
	}

	lm := NewLoadMetrics(r)
	lm.Submitted.Inc()
	lm.Committed.Inc()
	lm.E2E.Observe(20 * time.Millisecond)
	if lm.E2E.Count() != 1 {
		t.Fatal("load histogram")
	}

	pm := NewPeerDeliveryMetrics(r, "peer0")
	pm.Blocks.Inc()
	pm.Bytes.Add(4096)
	text := r.Text()
	for _, want := range []string{
		`validator_stage_seconds{engine="sequential",stage="vscc",stat="count"} 1`,
		`orderer_cuts_total{reason="size"} 1`,
		`delivery_bytes_total{peer="peer0"} 4096`,
		"load_e2e_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Disabled plane: all constructors return nil on nil registry.
	if NewValidatorMetrics(nil, "x") != nil || NewOrdererMetrics(nil) != nil ||
		NewLoadMetrics(nil) != nil || NewPeerDeliveryMetrics(nil, "p") != nil {
		t.Fatal("constructors must return nil for nil registry")
	}
}
