package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Lifecycle stage names, in pipeline order. Each committed block accumulates
// one span event per stage as it moves through the cluster; StageE2E is the
// enclosing span (first scheduled submit → commit durable on the observer)
// that the per-stage budget is measured against. StageOther absorbs commit
// path time not attributed to a measured stage (block re-marshal,
// checkpointing, scheduling residue) so the budget table sums transparently
// instead of hiding a gap.
const (
	StageSubmit   = "submit"   // client schedule → endorsement begins (pacing/queue wait)
	StageEndorse  = "endorse"  // endorsement gather + envelope build + orderer submit
	StageOrder    = "order"    // last tx submitted → batch cut and block created
	StagePublish  = "publish"  // orderer block → delivery fan-out accepted
	StageDeliver  = "deliver"  // delivery fan-out → observer peer receives the block
	StageParse    = "parse"    // envelope unmarshal (validator.Breakdown.Unmarshal)
	StagePrefetch = "prefetch" // commit-side prefetch wait
	StageVSCC     = "vscc"     // block sig verify + endorsement policy checks
	StageMVCC     = "mvcc"     // read-set version validation
	StageCommit   = "commit"   // state writes + ledger append
	StageOther    = "other"    // unattributed commit-path residue
	StageE2E      = "e2e"      // enclosing span: first submit schedule → committed
)

// Stages lists the per-stage span names in pipeline order (excluding the
// enclosing e2e span), the order budget tables print in.
func Stages() []string {
	return []string{
		StageSubmit, StageEndorse, StageOrder, StagePublish, StageDeliver,
		StageParse, StagePrefetch, StageVSCC, StageMVCC, StageCommit, StageOther,
	}
}

// Event is one span in a block's lifecycle trace, emitted as a JSONL line.
// Times are microseconds relative to the recorder's epoch so traces are
// compact and trivially diffable across runs.
type Event struct {
	Block   uint64 `json:"block"`
	Stage   string `json:"stage"`
	Peer    string `json:"peer,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Txs     int    `json:"txs,omitempty"`
}

type stageKey struct {
	block uint64
	stage string
}

// Recorder is the per-run flight recorder: an append-only list of span
// events plus an index of span endpoints so later pipeline hops can anchor
// their spans on the previous hop's end (making the trace contiguous). A
// nil Recorder is valid and ignores everything — disabled tracing costs the
// nil check only.
type Recorder struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event                // guarded by mu
	ends   map[stageKey]time.Time // guarded by mu
	starts map[stageKey]time.Time // guarded by mu
}

// NewRecorder creates a recorder whose event clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{
		epoch:  time.Now(),
		ends:   make(map[stageKey]time.Time),
		starts: make(map[stageKey]time.Time),
	}
}

// Stamp records one span for a block stage. Negative durations (clock skew
// between anchoring goroutines) are clamped to zero. Nil-safe.
func (r *Recorder) Stamp(block uint64, stage, peer string, start, end time.Time, txs int) {
	if r == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	ev := Event{
		Block:   block,
		Stage:   stage,
		Peer:    peer,
		StartUS: start.Sub(r.epoch).Microseconds(),
		DurUS:   end.Sub(start).Microseconds(),
		Txs:     txs,
	}
	k := stageKey{block, stage}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.ends[k] = end
	r.starts[k] = start
	r.mu.Unlock()
}

// StageEnd returns when the named stage of a block ended; ok=false when the
// stage was never stamped (or the recorder is nil).
func (r *Recorder) StageEnd(block uint64, stage string) (time.Time, bool) {
	if r == nil {
		return time.Time{}, false
	}
	r.mu.Lock()
	t, ok := r.ends[stageKey{block, stage}]
	r.mu.Unlock()
	return t, ok
}

// StageStart returns when the named stage of a block started; ok=false when
// never stamped.
func (r *Recorder) StageStart(block uint64, stage string) (time.Time, bool) {
	if r == nil {
		return time.Time{}, false
	}
	r.mu.Lock()
	t, ok := r.starts[stageKey{block, stage}]
	r.mu.Unlock()
	return t, ok
}

// Events returns a copy of all recorded spans (nil for a nil recorder).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSONL emits every span as one JSON object per line, in stamp order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// StageBudget is one row of the latency budget: total time spent in a stage
// across all traced blocks and its share of summed e2e latency.
type StageBudget struct {
	Stage string
	Total time.Duration
	Share float64 // fraction of summed e2e latency, 0..1
}

// Budget is the per-stage latency budget aggregated over every block that
// completed an e2e span: where the end-to-end microseconds went. A nil
// Budget is valid (a nil Recorder aggregates to one) and renders empty.
//
// bmaclint:nilsafe
type Budget struct {
	Blocks   int           // blocks with a completed e2e span
	E2E      time.Duration // summed e2e latency across those blocks
	Covered  time.Duration // summed per-stage spans across those blocks
	Coverage float64       // Covered / E2E, 0..1
	Stages   []StageBudget // pipeline order, zero-total stages omitted
}

// Budget aggregates the recorded spans into a latency budget. Only blocks
// with a completed e2e span contribute, so partially-traced blocks (in
// flight at shutdown) don't skew the shares. Nil recorder returns nil.
func (r *Recorder) Budget() *Budget {
	if r == nil {
		return nil
	}
	events := r.Events()
	done := make(map[uint64]bool)
	var e2e time.Duration
	blocks := 0
	for _, ev := range events {
		if ev.Stage == StageE2E {
			if !done[ev.Block] {
				blocks++
			}
			done[ev.Block] = true
			e2e += time.Duration(ev.DurUS) * time.Microsecond
		}
	}
	if blocks == 0 {
		return &Budget{}
	}
	totals := make(map[string]time.Duration)
	var covered time.Duration
	for _, ev := range events {
		if ev.Stage == StageE2E || !done[ev.Block] {
			continue
		}
		d := time.Duration(ev.DurUS) * time.Microsecond
		totals[ev.Stage] += d
		covered += d
	}
	b := &Budget{Blocks: blocks, E2E: e2e, Covered: covered}
	if e2e > 0 {
		b.Coverage = float64(covered) / float64(e2e)
	}
	known := make(map[string]bool)
	for _, st := range Stages() {
		known[st] = true
		if totals[st] == 0 {
			continue
		}
		b.Stages = append(b.Stages, StageBudget{Stage: st, Total: totals[st], Share: shareOf(totals[st], e2e)})
	}
	// Unknown stage names (future callers) sort after the known pipeline.
	var extra []string
	for st := range totals {
		if !known[st] {
			extra = append(extra, st)
		}
	}
	sort.Strings(extra)
	for _, st := range extra {
		b.Stages = append(b.Stages, StageBudget{Stage: st, Total: totals[st], Share: shareOf(totals[st], e2e)})
	}
	return b
}

func shareOf(d, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return float64(d) / float64(total)
}

// String renders the budget as an aligned text table (the "latency budget"
// block experiment reports print).
func (b *Budget) String() string {
	if b == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "latency budget over %d blocks (e2e sum %v, coverage %.1f%%)\n",
		b.Blocks, b.E2E.Round(time.Microsecond), 100*b.Coverage)
	for _, st := range b.Stages {
		fmt.Fprintf(&sb, "  %-9s %12v  %5.1f%%\n", st.Stage, st.Total.Round(time.Microsecond), 100*st.Share)
	}
	return sb.String()
}
