package telemetry

import "time"

// This file defines the per-subsystem instrument bundles. Each bundle is a
// struct of registry-backed instruments with a constructor that returns nil
// when the registry is nil, and nil-safe observe methods. Subsystems hold a
// (possibly nil) bundle pointer in their config; the existing ad-hoc stat
// structs (validator.Breakdown, delivery.PeerStats, cache Stats) stay as
// read adapters so experiment output is unchanged, while these bundles feed
// the live registry.

// ValidatorMetrics carries the per-stage validation histograms for one
// commit engine ("sequential" or "pipelined" label).
type ValidatorMetrics struct {
	Blocks, Txs *Counter

	Unmarshal, BlockVerify, VerifyVSCC, MVCC *Histogram
	StateDB, LedgerCommit, PrefetchWait      *Histogram
	Total                                    *Histogram
}

// NewValidatorMetrics builds the bundle for one engine; nil registry
// returns nil (disabled).
func NewValidatorMetrics(r *Registry, engine string) *ValidatorMetrics {
	if r == nil {
		return nil
	}
	h := func(stage string) *Histogram {
		return r.Histogram(Name("validator_stage_seconds", "engine", engine, "stage", stage))
	}
	return &ValidatorMetrics{
		Blocks:       r.Counter(Name("validator_blocks_total", "engine", engine)),
		Txs:          r.Counter(Name("validator_txs_total", "engine", engine)),
		Unmarshal:    h("unmarshal"),
		BlockVerify:  h("block_verify"),
		VerifyVSCC:   h("vscc"),
		MVCC:         h("mvcc"),
		StateDB:      h("statedb"),
		LedgerCommit: h("ledger_commit"),
		PrefetchWait: h("prefetch_wait"),
		Total:        h("total"),
	}
}

// ObserveBlock records one committed block's stage breakdown. All arguments
// are the validator.Breakdown fields of that block; a nil receiver ignores
// the call (one branch, telemetry off).
func (m *ValidatorMetrics) ObserveBlock(txs int, unmarshal, blockVerify, vscc, mvcc, statedb, ledger, prefetchWait, total time.Duration) {
	if m == nil {
		return
	}
	m.Blocks.Inc()
	m.Txs.Add(int64(txs))
	m.Unmarshal.Observe(unmarshal)
	m.BlockVerify.Observe(blockVerify)
	m.VerifyVSCC.Observe(vscc)
	m.MVCC.Observe(mvcc)
	m.StateDB.Observe(statedb)
	m.LedgerCommit.Observe(ledger)
	m.PrefetchWait.Observe(prefetchWait)
	m.Total.Observe(total)
}

// OrdererMetrics counts ordering-service activity: blocks/txs cut plus the
// reason each batch closed (size-triggered vs timeout-triggered cuts).
type OrdererMetrics struct {
	Blocks, Txs           *Counter
	SizeCuts, TimeoutCuts *Counter
}

// NewOrdererMetrics builds the bundle; nil registry returns nil.
func NewOrdererMetrics(r *Registry) *OrdererMetrics {
	if r == nil {
		return nil
	}
	return &OrdererMetrics{
		Blocks:      r.Counter("orderer_blocks_total"),
		Txs:         r.Counter("orderer_txs_total"),
		SizeCuts:    r.Counter("orderer_cuts_total{reason=\"size\"}"),
		TimeoutCuts: r.Counter("orderer_cuts_total{reason=\"timeout\"}"),
	}
}

// ObserveBlock records one cut block.
func (m *OrdererMetrics) ObserveBlock(txs int) {
	if m == nil {
		return
	}
	m.Blocks.Inc()
	m.Txs.Add(int64(txs))
}

// ObserveCut records why one batch closed.
func (m *OrdererMetrics) ObserveCut(size bool) {
	if m == nil {
		return
	}
	if size {
		m.SizeCuts.Inc()
	} else {
		m.TimeoutCuts.Inc()
	}
}

// LoadMetrics carries the load generator's end-to-end view: transactions
// submitted/committed/late-scheduled and the submit→commit latency
// histogram.
type LoadMetrics struct {
	Submitted, Committed, Late *Counter
	E2E                        *Histogram
}

// NewLoadMetrics builds the bundle; nil registry returns nil.
func NewLoadMetrics(r *Registry) *LoadMetrics {
	if r == nil {
		return nil
	}
	return &LoadMetrics{
		Submitted: r.Counter("load_submitted_txs_total"),
		Committed: r.Counter("load_committed_txs_total"),
		Late:      r.Counter("load_late_txs_total"),
		E2E:       r.Histogram("load_e2e_seconds"),
	}
}

// ObserveSubmit records one submitted transaction.
func (m *LoadMetrics) ObserveSubmit() {
	if m == nil {
		return
	}
	m.Submitted.Inc()
}

// ObserveLate records one open-loop arrival that fired behind schedule.
func (m *LoadMetrics) ObserveLate() {
	if m == nil {
		return
	}
	m.Late.Inc()
}

// ObserveCommit records one committed transaction and its e2e latency.
func (m *LoadMetrics) ObserveCommit(d time.Duration) {
	if m == nil {
		return
	}
	m.Committed.Inc()
	m.E2E.Observe(d)
}

// LedgerMetrics carries one peer's segmented-ledger lifecycle counters:
// segment seals (rotation), quarantines (sealed-segment checksum failures),
// restores (quarantined ranges re-fetched through delivery), prunes
// (segments dropped after a covering checkpoint) and index rebuilds.
// It is held by value in ledger.Options — the zero value (telemetry off)
// is all nil handles, so each event costs one predicted branch.
type LedgerMetrics struct {
	Sealed, Quarantined, Restored *Counter
	RestoredBlocks, Pruned        *Counter
	IndexRebuilds                 *Counter
}

// NewLedgerMetrics builds the bundle for one peer's ledger; a nil registry
// returns the zero (all-discarding) bundle.
func NewLedgerMetrics(r *Registry, peer string) LedgerMetrics {
	if r == nil {
		return LedgerMetrics{}
	}
	c := func(base string) *Counter { return r.Counter(Name(base, "peer", peer)) }
	return LedgerMetrics{
		Sealed:         c("ledger_segments_sealed_total"),
		Quarantined:    c("ledger_segments_quarantined_total"),
		Restored:       c("ledger_segments_restored_total"),
		RestoredBlocks: c("ledger_blocks_restored_total"),
		Pruned:         c("ledger_segments_pruned_total"),
		IndexRebuilds:  c("ledger_index_rebuilds_total"),
	}
}

// PeerDeliveryMetrics carries one delivery pipe's counters. Lag is exported
// separately as a GaugeFunc by the delivery service (it is computed from
// ledger height at scrape time, not maintained on the hot path).
type PeerDeliveryMetrics struct {
	Blocks, Bytes, Dropped  *Counter
	CaughtUp, Redials, Errs *Counter
}

// NewPeerDeliveryMetrics builds the bundle for one subscribed peer; nil
// registry returns nil.
func NewPeerDeliveryMetrics(r *Registry, peer string) *PeerDeliveryMetrics {
	if r == nil {
		return nil
	}
	c := func(base string) *Counter { return r.Counter(Name(base, "peer", peer)) }
	return &PeerDeliveryMetrics{
		Blocks:   c("delivery_blocks_total"),
		Bytes:    c("delivery_bytes_total"),
		Dropped:  c("delivery_dropped_total"),
		CaughtUp: c("delivery_catchup_blocks_total"),
		Redials:  c("delivery_redials_total"),
		Errs:     c("delivery_send_errors_total"),
	}
}
