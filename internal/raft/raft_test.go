package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

const testTimeout = 30 * time.Millisecond

func TestSingleNodeBecomesLeader(t *testing.T) {
	c := NewCluster(1, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(2 * time.Second)
	if leader == nil {
		t.Fatal("single node never became leader")
	}
}

func TestSingleNodeCommits(t *testing.T) {
	c := NewCluster(1, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(2 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	if err := leader.Propose([]byte("batch-1")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-leader.Apply():
		if string(e.Data) != "batch-1" || e.Index != 1 {
			t.Errorf("entry = %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("entry never committed")
	}
}

func TestThreeNodeElection(t *testing.T) {
	c := NewCluster(3, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader elected")
	}
	// Exactly one leader at the highest term.
	time.Sleep(5 * testTimeout)
	leaders := 0
	var maxTerm uint64
	for _, n := range c.Nodes {
		term, _, _ := n.Status()
		if term > maxTerm {
			maxTerm = term
		}
	}
	for _, n := range c.Nodes {
		term, state, _ := n.Status()
		if state == Leader && term == maxTerm {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders at max term = %d, want 1", leaders)
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	c := NewCluster(3, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	const entries = 5
	for i := 0; i < entries; i++ {
		if err := leader.Propose([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for ni, n := range c.Nodes {
		for i := 0; i < entries; i++ {
			select {
			case e := <-n.Apply():
				want := fmt.Sprintf("entry-%d", i)
				if string(e.Data) != want {
					t.Errorf("node %d entry %d = %q, want %q", ni, i, e.Data, want)
				}
			case <-time.After(3 * time.Second):
				t.Fatalf("node %d: entry %d never applied", ni, i)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := NewCluster(3, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	for _, n := range c.Nodes {
		if _, state, _ := n.Status(); state != Leader {
			if err := n.Propose([]byte("x")); !errors.Is(err, ErrNotLeader) {
				t.Errorf("follower propose err = %v, want ErrNotLeader", err)
			}
			return
		}
	}
	t.Fatal("no follower found")
}

func TestLeaderFailureTriggersReelection(t *testing.T) {
	c := NewCluster(3, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	oldID := leader.cfg.ID
	oldTerm, _, _ := leader.Status()
	c.Transport.SetDown(oldID, true)

	deadline := time.Now().Add(5 * time.Second)
	var newLeader *Node
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes {
			if n.cfg.ID == oldID {
				continue
			}
			if term, state, _ := n.Status(); state == Leader && term > oldTerm {
				newLeader = n
			}
		}
		if newLeader != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("no new leader after failure")
	}
	// New leader can still commit (2/3 quorum).
	if err := newLeader.Propose([]byte("after-failover")); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-newLeader.Apply():
		if string(e.Data) != "after-failover" {
			t.Errorf("entry = %q", e.Data)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("post-failover entry never committed")
	}
}

func TestHealedPartitionConverges(t *testing.T) {
	c := NewCluster(3, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	// Isolate one follower, commit entries, then heal.
	var isolated *Node
	for _, n := range c.Nodes {
		if _, state, _ := n.Status(); state != Leader {
			isolated = n
			break
		}
	}
	c.Transport.SetDown(isolated.cfg.ID, true)

	// Re-find a functioning leader among the majority side (the old leader
	// may have been the isolated node's peer — it keeps leading).
	for i := 0; i < 3; i++ {
		if err := leader.Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain on the leader to confirm commit.
	for i := 0; i < 3; i++ {
		select {
		case <-leader.Apply():
		case <-time.After(3 * time.Second):
			t.Fatal("majority commit stalled")
		}
	}

	c.Transport.SetDown(isolated.cfg.ID, false)
	// The isolated node catches up.
	for i := 0; i < 3; i++ {
		select {
		case e := <-isolated.Apply():
			want := fmt.Sprintf("e%d", i)
			if string(e.Data) != want {
				t.Errorf("catch-up entry %d = %q", i, e.Data)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("isolated node never caught up (entry %d)", i)
		}
	}
}

func TestFiveNodeClusterCommits(t *testing.T) {
	c := NewCluster(5, testTimeout)
	defer c.Stop()
	leader := c.WaitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	if err := leader.Propose([]byte("five")); err != nil {
		t.Fatal(err)
	}
	committed := 0
	deadline := time.After(3 * time.Second)
	for committed < 5 {
		for _, n := range c.Nodes {
			select {
			case <-n.Apply():
				committed++
			case <-deadline:
				// Quorum (3) is enough for correctness; all 5 should
				// arrive shortly after, but don't flake on stragglers.
				if committed >= 3 {
					return
				}
				t.Fatalf("only %d nodes applied", committed)
			default:
			}
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStopIsIdempotent(t *testing.T) {
	c := NewCluster(1, testTimeout)
	c.Stop()
	c.Stop() // must not panic or hang
	if err := c.Nodes[0].Propose([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("propose after stop: %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("state strings wrong")
	}
}
