// Package raft implements the consensus substrate of the ordering service:
// leader election and log replication following the Raft protocol (Ongaro &
// Ousterhout, USENIX ATC 2014), which Fabric v1.4 uses for ordering.
//
// The implementation is deliberately compact — enough Raft for a correct
// single-channel ordering service: randomized election timeouts, term-based
// leader election, log replication with consistency checks, and commitment
// by majority match. Snapshots and membership changes are out of scope, as
// they are for the paper's single-orderer evaluation setup.
package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// NodeID identifies a raft node within its cluster (>= 0).
type NodeID int

// None is the nil node id.
const None NodeID = -1

// State is a node's role.
type State int

// Node states.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Entry is one replicated log entry.
type Entry struct {
	Term  uint64
	Index int // 1-based log index
	Data  []byte
}

// MessageKind discriminates RPC messages.
type MessageKind int

// Message kinds.
const (
	MsgRequestVote MessageKind = iota + 1
	MsgVoteResponse
	MsgAppendEntries
	MsgAppendResponse
)

// Message is a Raft RPC (request or response).
type Message struct {
	Kind MessageKind
	From NodeID
	To   NodeID
	Term uint64

	// RequestVote
	LastLogIndex int
	LastLogTerm  uint64
	// VoteResponse
	Granted bool
	// AppendEntries
	PrevLogIndex int
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit int
	// AppendResponse
	Success    bool
	MatchIndex int
}

// Transport delivers messages between nodes. Implementations may drop or
// delay messages (Raft tolerates both).
type Transport interface {
	Send(msg Message)
}

// Config parameterizes a node.
type Config struct {
	ID    NodeID
	Peers []NodeID // all cluster members including self
	// ElectionTimeout is the base election timeout; the effective timeout
	// is randomized in [ElectionTimeout, 2*ElectionTimeout).
	ElectionTimeout time.Duration
	// HeartbeatInterval must be well below ElectionTimeout.
	HeartbeatInterval time.Duration
	// Seed randomizes election timeouts deterministically in tests.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTimeout == 0 {
		out.ElectionTimeout = 150 * time.Millisecond
	}
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = out.ElectionTimeout / 5
	}
	if out.Seed == 0 {
		out.Seed = time.Now().UnixNano()
	}
	return out
}

// ErrNotLeader reports a Propose on a non-leader node.
var ErrNotLeader = errors.New("raft: not the leader")

// ErrStopped reports an operation on a stopped node.
var ErrStopped = errors.New("raft: node stopped")

type proposal struct {
	data []byte
	resp chan error
}

// Node is one Raft participant. Create with NewNode, feed incoming messages
// with Step, and consume committed entries from Apply().
type Node struct {
	cfg       Config
	transport Transport

	inbox   chan Message
	propose chan proposal
	applyCh chan Entry
	stopCh  chan struct{}
	doneCh  chan struct{}

	mu     sync.Mutex // guards the observable state below
	state  State      // guarded by mu
	term   uint64     // guarded by mu
	leader NodeID     // guarded by mu

	// raft state, owned by the run goroutine
	votedFor     NodeID
	log          []Entry // log[0] unused; 1-based indexing
	commitIndex  int
	lastApplied  int
	nextIndex    map[NodeID]int
	matchIndex   map[NodeID]int
	votes        map[NodeID]bool
	rng          *rand.Rand
	electionDue  time.Time
	heartbeatDue time.Time
}

// NewNode creates and starts a node.
func NewNode(cfg Config, transport Transport) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:       c,
		transport: transport,
		inbox:     make(chan Message, 256),
		propose:   make(chan proposal),
		applyCh:   make(chan Entry, 256),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		state:     Follower,
		leader:    None,
		votedFor:  None,
		log:       make([]Entry, 1), // dummy at index 0
		rng:       rand.New(rand.NewSource(c.Seed + int64(c.ID))),
	}
	n.resetElectionTimer(time.Now())
	go n.run()
	return n
}

// Step feeds an incoming message; non-blocking best effort (Raft tolerates
// message loss).
func (n *Node) Step(msg Message) {
	select {
	case n.inbox <- msg:
	case <-n.stopCh:
	default: // inbox overflow == network drop
	}
}

// Apply returns the channel of committed entries, in log order.
func (n *Node) Apply() <-chan Entry { return n.applyCh }

// Propose submits data for replication. It blocks until the entry has been
// accepted into the leader's log (not until commit) and fails with
// ErrNotLeader on non-leaders.
func (n *Node) Propose(data []byte) error {
	p := proposal{data: data, resp: make(chan error, 1)}
	select {
	case n.propose <- p:
	case <-n.stopCh:
		return ErrStopped
	}
	select {
	case err := <-p.resp:
		return err
	case <-n.stopCh:
		return ErrStopped
	}
}

// Status reports the node's current term, state and known leader.
func (n *Node) Status() (term uint64, state State, leader NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term, n.state, n.leader
}

// Stop terminates the node's goroutine.
func (n *Node) Stop() {
	select {
	case <-n.stopCh:
		return // already stopped
	default:
	}
	close(n.stopCh)
	<-n.doneCh
}

func (n *Node) run() {
	defer close(n.doneCh)
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case msg := <-n.inbox:
			n.handle(msg)
		case p := <-n.propose:
			n.handlePropose(p)
		case now := <-ticker.C:
			n.tick(now)
		}
	}
}

func (n *Node) setState(state State, term uint64, leader NodeID) {
	n.mu.Lock()
	n.state = state
	n.term = term
	n.leader = leader
	n.mu.Unlock()
}

func (n *Node) curState() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

func (n *Node) curTerm() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

func (n *Node) resetElectionTimer(now time.Time) {
	jitter := time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionDue = now.Add(n.cfg.ElectionTimeout + jitter)
}

func (n *Node) lastLogIndex() int { return len(n.log) - 1 }

func (n *Node) lastLogTerm() uint64 {
	if len(n.log) == 1 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func (n *Node) tick(now time.Time) {
	switch n.curState() {
	case Leader:
		if now.After(n.heartbeatDue) {
			n.broadcastAppend()
			n.heartbeatDue = now.Add(n.cfg.HeartbeatInterval)
		}
	case Follower, Candidate:
		if now.After(n.electionDue) {
			n.startElection(now)
		}
	}
}

func (n *Node) startElection(now time.Time) {
	term := n.curTerm() + 1
	n.setState(Candidate, term, None)
	n.votedFor = n.cfg.ID
	n.votes = map[NodeID]bool{n.cfg.ID: true}
	n.resetElectionTimer(now)
	for _, peer := range n.cfg.Peers {
		if peer == n.cfg.ID {
			continue
		}
		n.transport.Send(Message{
			Kind:         MsgRequestVote,
			From:         n.cfg.ID,
			To:           peer,
			Term:         term,
			LastLogIndex: n.lastLogIndex(),
			LastLogTerm:  n.lastLogTerm(),
		})
	}
	if n.hasQuorum(len(n.votes)) { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) hasQuorum(count int) bool {
	return count*2 > len(n.cfg.Peers)
}

func (n *Node) becomeLeader() {
	n.setState(Leader, n.curTerm(), n.cfg.ID)
	n.nextIndex = make(map[NodeID]int, len(n.cfg.Peers))
	n.matchIndex = make(map[NodeID]int, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = n.lastLogIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.cfg.ID] = n.lastLogIndex()
	n.broadcastAppend()
	n.heartbeatDue = time.Now().Add(n.cfg.HeartbeatInterval)
}

func (n *Node) stepDown(term uint64, leader NodeID) {
	n.setState(Follower, term, leader)
	n.votedFor = None
	n.resetElectionTimer(time.Now())
}

func (n *Node) handle(msg Message) {
	if msg.Term > n.curTerm() {
		n.stepDown(msg.Term, None)
	}
	switch msg.Kind {
	case MsgRequestVote:
		n.handleRequestVote(msg)
	case MsgVoteResponse:
		n.handleVoteResponse(msg)
	case MsgAppendEntries:
		n.handleAppendEntries(msg)
	case MsgAppendResponse:
		n.handleAppendResponse(msg)
	}
}

func (n *Node) handleRequestVote(msg Message) {
	term := n.curTerm()
	grant := false
	if msg.Term >= term && (n.votedFor == None || n.votedFor == msg.From) {
		// Candidate's log must be at least as up-to-date as ours.
		upToDate := msg.LastLogTerm > n.lastLogTerm() ||
			(msg.LastLogTerm == n.lastLogTerm() && msg.LastLogIndex >= n.lastLogIndex())
		if upToDate {
			grant = true
			n.votedFor = msg.From
			n.resetElectionTimer(time.Now())
		}
	}
	n.transport.Send(Message{
		Kind:    MsgVoteResponse,
		From:    n.cfg.ID,
		To:      msg.From,
		Term:    n.curTerm(),
		Granted: grant,
	})
}

func (n *Node) handleVoteResponse(msg Message) {
	if n.curState() != Candidate || msg.Term != n.curTerm() || !msg.Granted {
		return
	}
	n.votes[msg.From] = true
	if n.hasQuorum(len(n.votes)) {
		n.becomeLeader()
	}
}

func (n *Node) handleAppendEntries(msg Message) {
	term := n.curTerm()
	resp := Message{
		Kind: MsgAppendResponse,
		From: n.cfg.ID,
		To:   msg.From,
		Term: term,
	}
	if msg.Term < term {
		n.transport.Send(resp)
		return
	}
	// Valid leader for this term.
	n.stepDown(msg.Term, msg.From)
	resp.Term = msg.Term

	// Log consistency check.
	if msg.PrevLogIndex > n.lastLogIndex() ||
		(msg.PrevLogIndex > 0 && n.log[msg.PrevLogIndex].Term != msg.PrevLogTerm) {
		n.transport.Send(resp) // Success=false
		return
	}
	// Append/truncate.
	for i, e := range msg.Entries {
		idx := msg.PrevLogIndex + 1 + i
		if idx <= n.lastLogIndex() {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx] // conflict: truncate
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if msg.LeaderCommit > n.commitIndex {
		n.commitIndex = min(msg.LeaderCommit, n.lastLogIndex())
		n.applyCommitted()
	}
	resp.Success = true
	resp.MatchIndex = msg.PrevLogIndex + len(msg.Entries)
	n.transport.Send(resp)
}

func (n *Node) handleAppendResponse(msg Message) {
	if n.curState() != Leader || msg.Term != n.curTerm() {
		return
	}
	if msg.Success {
		if msg.MatchIndex > n.matchIndex[msg.From] {
			n.matchIndex[msg.From] = msg.MatchIndex
		}
		n.nextIndex[msg.From] = n.matchIndex[msg.From] + 1
		n.maybeCommit()
		if n.nextIndex[msg.From] <= n.lastLogIndex() {
			n.sendAppend(msg.From) // continue catching the follower up
		}
	} else {
		if n.nextIndex[msg.From] > 1 {
			n.nextIndex[msg.From]--
		}
		n.sendAppend(msg.From)
	}
}

func (n *Node) maybeCommit() {
	// Find the highest index replicated on a majority with current term.
	for idx := n.lastLogIndex(); idx > n.commitIndex; idx-- {
		if n.log[idx].Term != n.curTerm() {
			break // only commit entries from the current term directly
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if n.hasQuorum(count) {
			n.commitIndex = idx
			n.applyCommitted()
			break
		}
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		entry := n.log[n.lastApplied]
		select {
		case n.applyCh <- entry:
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) broadcastAppend() {
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.sendAppend(p)
		}
	}
}

func (n *Node) sendAppend(to NodeID) {
	next := n.nextIndex[to]
	if next < 1 {
		next = 1
	}
	prevIdx := next - 1
	var prevTerm uint64
	if prevIdx > 0 && prevIdx <= n.lastLogIndex() {
		prevTerm = n.log[prevIdx].Term
	}
	var entries []Entry
	if next <= n.lastLogIndex() {
		entries = append(entries, n.log[next:]...)
	}
	n.transport.Send(Message{
		Kind:         MsgAppendEntries,
		From:         n.cfg.ID,
		To:           to,
		Term:         n.curTerm(),
		PrevLogIndex: prevIdx,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	})
}

func (n *Node) handlePropose(p proposal) {
	if n.curState() != Leader {
		p.resp <- ErrNotLeader
		return
	}
	entry := Entry{
		Term:  n.curTerm(),
		Index: n.lastLogIndex() + 1,
		Data:  p.data,
	}
	n.log = append(n.log, entry)
	n.matchIndex[n.cfg.ID] = n.lastLogIndex()
	if n.hasQuorum(1) { // single-node cluster commits immediately
		n.maybeCommit()
	} else {
		n.broadcastAppend()
	}
	p.resp <- nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
