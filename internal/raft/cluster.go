package raft

import (
	"sync"
	"time"
)

// LocalTransport routes messages between nodes in-process, with optional
// per-link partitioning for fault-injection tests.
type LocalTransport struct {
	mu     sync.RWMutex
	nodes  map[NodeID]*Node   // guarded by mu
	cut    map[[2]NodeID]bool // guarded by mu
	downed map[NodeID]bool    // guarded by mu
}

// NewLocalTransport returns an empty in-process transport.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{
		nodes:  make(map[NodeID]*Node),
		cut:    make(map[[2]NodeID]bool),
		downed: make(map[NodeID]bool),
	}
}

// Register attaches a node so it can receive messages.
func (t *LocalTransport) Register(id NodeID, n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[id] = n
}

var _ Transport = (*LocalTransport)(nil)

// Send implements Transport.
func (t *LocalTransport) Send(msg Message) {
	t.mu.RLock()
	target := t.nodes[msg.To]
	blocked := t.cut[[2]NodeID{msg.From, msg.To}] || t.downed[msg.From] || t.downed[msg.To]
	t.mu.RUnlock()
	if target == nil || blocked {
		return // dropped, like a lossy network
	}
	target.Step(msg)
}

// Partition cuts both directions between a and b.
func (t *LocalTransport) Partition(a, b NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut[[2]NodeID{a, b}] = true
	t.cut[[2]NodeID{b, a}] = true
}

// Heal restores all links and nodes.
func (t *LocalTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cut = make(map[[2]NodeID]bool)
	t.downed = make(map[NodeID]bool)
}

// SetDown isolates a node entirely (crash simulation without stopping the
// goroutine).
func (t *LocalTransport) SetDown(id NodeID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.downed[id] = down
}

// Cluster is a convenience wrapper: n nodes over a LocalTransport.
type Cluster struct {
	Transport *LocalTransport
	Nodes     []*Node
}

// NewCluster starts an n-node cluster with fast timeouts for tests and the
// local ordering service.
func NewCluster(n int, electionTimeout time.Duration) *Cluster {
	tr := NewLocalTransport()
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i)
	}
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		node := NewNode(Config{
			ID:              NodeID(i),
			Peers:           peers,
			ElectionTimeout: electionTimeout,
			Seed:            int64(1000 + i),
		}, tr)
		tr.Register(NodeID(i), node)
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// WaitForLeader blocks until some node is leader, returning it (nil on
// timeout).
func (c *Cluster) WaitForLeader(timeout time.Duration) *Node {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes {
			if _, state, _ := n.Status(); state == Leader {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// Stop stops every node.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
	}
}
