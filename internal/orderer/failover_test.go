package orderer

import (
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/raft"
)

// electNewLeader waits out the re-election after the node at killedIdx was
// stopped. Cluster.WaitForLeader cannot be used: the stopped node's Status
// may still read Leader.
func electNewLeader(t *testing.T, c *raft.Cluster, killedIdx int) *raft.Node {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i, n := range c.Nodes {
			if i == killedIdx {
				continue
			}
			if _, state, _ := n.Status(); state == raft.Leader {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no new leader elected after the kill")
	return nil
}

// TestLeaderKillMidBatchExactlyOnce is the failover acceptance gate:
// transactions submitted around a raft leader kill — some cut into batches,
// some still pending — are committed exactly once after the orderer is
// rebound to the newly elected leader. No silent loss, no duplicate commit.
func TestLeaderKillMidBatchExactlyOnce(t *testing.T) {
	f := newFixture(t)
	c := raft.NewCluster(3, 25*time.Millisecond)
	t.Cleanup(c.Stop)
	leader := c.WaitForLeader(5 * time.Second)
	if leader == nil {
		t.Fatal("raft leader election timed out")
	}
	leaderIdx := -1
	for i, n := range c.Nodes {
		if n == leader {
			leaderIdx = i
		}
	}

	ord := New(Config{BatchSize: 4, BatchTimeout: 20 * time.Millisecond, Channel: "ch"}, f.ordID, leader)
	defer ord.Stop()
	col := newCollector()
	ord.OnDeliver(col.deliver)

	const total = 10
	want := make(map[string]bool, total)
	submit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			env := f.envelope(t)
			id, err := block.EnvelopeTxID(env)
			if err != nil {
				t.Fatal(err)
			}
			want[id] = true
			if err := ord.Submit(env); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}

	// A full batch plus a pending remainder, then the kill: the remainder
	// is mid-batch, and a cut batch may be anywhere between leader-log
	// acceptance and apply when the leader dies.
	submit(6)
	leader.Stop()
	// Submissions keep arriving while the cluster is leaderless; the
	// orderer parks them (ErrNotLeader/ErrStopped are transients) and the
	// batch timer keeps retrying.
	submit(total - 6)

	newLeader := electNewLeader(t, c, leaderIdx)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ord.Rebind(newLeader); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebind never succeeded after re-election")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every submitted transaction commits exactly once.
	seen := make(map[string]int, total)
	committed := 0
	for committed < total {
		blocks := col.wait(t, 1, 10*time.Second)
		committed = 0
		seen = make(map[string]int, total)
		for _, b := range blocks {
			for i := range b.Envelopes {
				id, err := block.EnvelopeTxID(&b.Envelopes[i])
				if err != nil {
					t.Fatal(err)
				}
				seen[id]++
				committed++
			}
		}
		if committed < total {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(seen) != total {
		t.Fatalf("%d distinct txids committed, want %d", len(seen), total)
	}
	for id, n := range seen {
		if !want[id] {
			t.Errorf("unknown txid %s committed", id)
		}
		if n != 1 {
			t.Errorf("txid %s committed %d times", id, n)
		}
	}
	if err := ord.Err(); err != nil {
		t.Fatalf("orderer loop error: %v", err)
	}
}

// TestRebindDeduplicatesReproposedBatch pins the exactly-once machinery
// directly: a cut-but-unapplied batch parked in the inflight map is
// re-proposed by Rebind and committed; a second Rebind (the batch is
// applied by then) must not commit it again, and neither must a raw
// duplicate proposal of the same batch data.
func TestRebindDeduplicatesReproposedBatch(t *testing.T) {
	f := newFixture(t)
	leader := f.cluster.WaitForLeader(3 * time.Second)
	ord := New(Config{BatchSize: 100, BatchTimeout: time.Hour, Channel: "ch"}, f.ordID, leader)
	defer ord.Stop()
	col := newCollector()
	ord.OnDeliver(col.deliver)

	env := f.envelope(t)
	data := marshalBatch([]block.Envelope{*env}, 7)
	ord.mu.Lock()
	ord.batchSeq = 7
	ord.inflight[7] = data
	ord.mu.Unlock()

	if err := ord.Rebind(leader); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	col.wait(t, 1, 5*time.Second)

	// Re-propose through a second rebind and a raw duplicate: both must
	// be absorbed by the applied-sequence dedup.
	if err := ord.Rebind(leader); err != nil {
		t.Fatalf("second rebind: %v", err)
	}
	if err := leader.Propose(data); err != nil {
		t.Fatalf("duplicate proposal: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	col.mu.Lock()
	blocks := len(col.blocks)
	col.mu.Unlock()
	if blocks != 1 {
		t.Fatalf("%d blocks committed from one batch, want exactly 1", blocks)
	}
	if err := ord.Err(); err != nil {
		t.Fatalf("orderer loop error: %v", err)
	}
}
