package orderer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/raft"
)

type fixture struct {
	net     *identity.Network
	client  *identity.Identity
	ordID   *identity.Identity
	cluster *raft.Cluster
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	ordID, err := n.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	c := raft.NewCluster(1, 20*time.Millisecond)
	if c.WaitForLeader(3*time.Second) == nil {
		t.Fatal("raft leader never elected")
	}
	t.Cleanup(c.Stop)
	return &fixture{net: n, client: client, ordID: ordID, cluster: c}
}

func (f *fixture) envelope(t *testing.T) *block.Envelope {
	t.Helper()
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator: f.client, Chaincode: "cc", Channel: "ch",
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// collector gathers delivered blocks.
type collector struct {
	mu     sync.Mutex
	blocks []*block.Block
	ch     chan *block.Block
}

func newCollector() *collector {
	return &collector{ch: make(chan *block.Block, 64)}
}

func (c *collector) deliver(b *block.Block) error {
	c.mu.Lock()
	c.blocks = append(c.blocks, b)
	c.mu.Unlock()
	c.ch <- b
	return nil
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) []*block.Block {
	t.Helper()
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		if len(c.blocks) >= n {
			out := append([]*block.Block(nil), c.blocks...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.ch:
		case <-deadline:
			c.mu.Lock()
			got := len(c.blocks)
			c.mu.Unlock()
			t.Fatalf("timed out with %d/%d blocks", got, n)
		}
	}
}

func TestBatchSizeCut(t *testing.T) {
	f := newFixture(t)
	col := newCollector()
	o := New(Config{BatchSize: 3, BatchTimeout: time.Hour, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	defer o.Stop()
	o.OnDeliver(col.deliver)

	for i := 0; i < 6; i++ {
		if err := o.Submit(f.envelope(t)); err != nil {
			t.Fatal(err)
		}
	}
	blocks := col.wait(t, 2, 5*time.Second)
	if len(blocks[0].Envelopes) != 3 || len(blocks[1].Envelopes) != 3 {
		t.Errorf("block sizes = %d, %d; want 3, 3", len(blocks[0].Envelopes), len(blocks[1].Envelopes))
	}
}

func TestBatchTimeoutCut(t *testing.T) {
	f := newFixture(t)
	col := newCollector()
	o := New(Config{BatchSize: 100, BatchTimeout: 20 * time.Millisecond, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	defer o.Stop()
	o.OnDeliver(col.deliver)

	if err := o.Submit(f.envelope(t)); err != nil {
		t.Fatal(err)
	}
	blocks := col.wait(t, 1, 5*time.Second)
	if len(blocks[0].Envelopes) != 1 {
		t.Errorf("partial batch size = %d, want 1", len(blocks[0].Envelopes))
	}
}

func TestBlocksChainAndVerify(t *testing.T) {
	f := newFixture(t)
	col := newCollector()
	o := New(Config{BatchSize: 2, BatchTimeout: time.Hour, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	defer o.Stop()
	o.OnDeliver(col.deliver)

	for i := 0; i < 6; i++ {
		if err := o.Submit(f.envelope(t)); err != nil {
			t.Fatal(err)
		}
	}
	blocks := col.wait(t, 3, 5*time.Second)
	for i, b := range blocks {
		if b.Header.Number != uint64(i) {
			t.Errorf("block %d numbered %d", i, b.Header.Number)
		}
		if err := block.VerifyOrdererSignature(b); err != nil {
			t.Errorf("block %d signature: %v", i, err)
		}
		if i > 0 {
			prev := block.HeaderHash(&blocks[i-1].Header)
			if string(b.Header.PreviousHash) != string(prev) {
				t.Errorf("block %d previous hash broken", i)
			}
		}
	}
	nb, ntx := o.Stats()
	if nb != 3 || ntx != 6 {
		t.Errorf("stats = %d blocks / %d txs", nb, ntx)
	}
	if o.Height() != 3 {
		t.Errorf("height = %d", o.Height())
	}
}

func TestMultipleDeliveryHooks(t *testing.T) {
	f := newFixture(t)
	c1, c2 := newCollector(), newCollector()
	o := New(Config{BatchSize: 1, BatchTimeout: time.Hour, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	defer o.Stop()
	o.OnDeliver(c1.deliver)
	o.OnDeliver(c2.deliver)
	if err := o.Submit(f.envelope(t)); err != nil {
		t.Fatal(err)
	}
	c1.wait(t, 1, 5*time.Second)
	c2.wait(t, 1, 5*time.Second)
}

func TestSubmitAfterStop(t *testing.T) {
	f := newFixture(t)
	o := New(Config{BatchSize: 1}, f.ordID, f.cluster.Nodes[0])
	o.Stop()
	if err := o.Submit(f.envelope(t)); err == nil {
		t.Error("expected error after stop")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	f := newFixture(t)
	envs := []block.Envelope{*f.envelope(t), *f.envelope(t)}
	got, seq, err := unmarshalBatch(marshalBatch(envs, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("batch round trip = %d envelopes", len(got))
	}
	if seq != 7 {
		t.Fatalf("batch round trip seq = %d, want 7", seq)
	}
	for i := range envs {
		if string(got[i].PayloadBytes) != string(envs[i].PayloadBytes) {
			t.Errorf("envelope %d payload mismatch", i)
		}
	}
}

// TestSizeCutResetsBatchTimer is the regression for the ticker bug: a
// full-batch cut must restart the batch timeout, so a transaction
// arriving right after a size cut waits the full BatchTimeout instead of
// being cut into a tiny trailing block by a nearly-expired timer.
func TestSizeCutResetsBatchTimer(t *testing.T) {
	f := newFixture(t)
	col := newCollector()
	const timeout = 300 * time.Millisecond
	o := New(Config{BatchSize: 4, BatchTimeout: timeout, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	defer o.Stop()
	o.OnDeliver(col.deliver)
	env := f.envelope(t)

	// Let most of the first timeout elapse, then cut a full batch: with
	// the old free-running ticker the timeout fires ~50ms later and cuts
	// whatever trickled in; with the reset it fires a full BatchTimeout
	// after the size cut.
	time.Sleep(timeout - 50*time.Millisecond)
	for i := 0; i < 4; i++ {
		if err := o.Submit(env); err != nil {
			t.Fatal(err)
		}
	}
	blocks := col.wait(t, 1, 5*time.Second)
	fullCutAt := time.Now()
	if len(blocks[0].Envelopes) != 4 {
		t.Fatalf("size-based cut produced %d envelopes, want 4", len(blocks[0].Envelopes))
	}
	if err := o.Submit(env); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 2, 5*time.Second)
	gap := time.Since(fullCutAt)
	if gap < timeout-60*time.Millisecond {
		t.Fatalf("trailing 1-tx block cut %v after the full-batch cut; want >= ~%v (timer not reset)", gap, timeout)
	}

	// Steady full-batch load: no partial blocks anywhere in the stream.
	for i := 0; i < 40; i++ {
		if err := o.Submit(env); err != nil {
			t.Fatal(err)
		}
	}
	all := col.wait(t, 12, 10*time.Second)
	for i, b := range all[2:12] {
		if len(b.Envelopes) != 4 {
			t.Errorf("block %d has %d envelopes under steady full-batch load, want 4", i+2, len(b.Envelopes))
		}
	}
}

// TestDeliveryHookFailureSurfaced: a failing delivery hook used to kill
// the node silently; it must now be visible through Err and Stop.
func TestDeliveryHookFailureSurfaced(t *testing.T) {
	f := newFixture(t)
	boom := errors.New("deliver hook exploded")
	o := New(Config{BatchSize: 1, BatchTimeout: time.Hour, Channel: "ch"}, f.ordID, f.cluster.Nodes[0])
	o.OnDeliver(func(*block.Block) error { return boom })
	if err := o.Submit(f.envelope(t)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for o.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("fatal delivery error never surfaced through Err")
		}
		time.Sleep(time.Millisecond)
	}
	if err := o.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want wrapped %v", err, boom)
	}
	if err := o.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop() = %v, want wrapped %v", err, boom)
	}
}

func TestStopWithoutErrorReturnsNil(t *testing.T) {
	f := newFixture(t)
	o := New(Config{BatchSize: 1}, f.ordID, f.cluster.Nodes[0])
	if err := o.Stop(); err != nil {
		t.Fatalf("clean Stop() = %v", err)
	}
}

func TestRaftOrderingAcrossThreeOrderers(t *testing.T) {
	// Multi-node ordering service: blocks are created identically on every
	// node because Raft totally orders the batches.
	n := identity.NewNetwork()
	if _, err := n.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	client, err := n.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		t.Fatal(err)
	}
	c := raft.NewCluster(3, 25*time.Millisecond)
	defer c.Stop()
	leaderNode := c.WaitForLeader(3 * time.Second)
	if leaderNode == nil {
		t.Fatal("no leader")
	}

	var orderers []*Orderer
	var cols []*collector
	for i := 0; i < 3; i++ {
		ordID, err := n.NewIdentity("Org1", identity.RoleOrderer)
		if err != nil {
			t.Fatal(err)
		}
		col := newCollector()
		o := New(Config{BatchSize: 2, BatchTimeout: time.Hour, Channel: "ch"}, ordID, c.Nodes[i])
		o.OnDeliver(col.deliver)
		orderers = append(orderers, o)
		cols = append(cols, col)
		defer o.Stop()
	}
	// Submit through the orderer bound to the raft leader.
	var leaderOrd *Orderer
	for i, node := range c.Nodes {
		if node == leaderNode {
			leaderOrd = orderers[i]
		}
	}
	env, err := block.NewEndorsedEnvelope(block.TxSpec{Creator: client, Chaincode: "cc", Channel: "ch"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := leaderOrd.Submit(env); err != nil {
			t.Fatal(err)
		}
	}
	// Every orderer creates the same sequence of blocks (same data hash).
	var ref []*block.Block
	for i, col := range cols {
		blocks := col.wait(t, 2, 5*time.Second)
		if i == 0 {
			ref = blocks
			continue
		}
		for j := range ref {
			if string(blocks[j].Header.DataHash) != string(ref[j].Header.DataHash) {
				t.Errorf("orderer %d block %d data hash diverges", i, j)
			}
		}
	}
}
