// Package orderer implements the ordering service: it batches submitted
// transaction envelopes into blocks (block cutting by size or timeout),
// establishes a total order through Raft consensus, signs each block, and
// delivers it — through Gossip to software-only peers and through the BMac
// protocol to hardware peers, exactly the dual path of paper §3.5 ("the
// same orderer can send blocks to both software-only and BMac peers").
package orderer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/raft"
	"bmac/internal/telemetry"
	"bmac/internal/wire"
)

// DeliverFunc receives each newly created block, in order. Hooks are where
// the Gossip broadcaster and the BMac protocol sender attach.
type DeliverFunc func(*block.Block) error

// Config parameterizes the ordering service.
type Config struct {
	// BatchSize is the maximum number of transactions per block.
	BatchSize int
	// BatchTimeout cuts a partial batch after this delay.
	BatchTimeout time.Duration
	// Channel is the channel ID stamped on blocks.
	Channel string
	// Metrics, when non-nil, counts created blocks/txs and batch cuts by
	// reason (size vs timeout) in the telemetry registry. Nil (telemetry
	// off) costs one predicted branch per cut.
	Metrics *telemetry.OrdererMetrics
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 100 * time.Millisecond
	}
	return out
}

// ErrStopped reports submission to a stopped orderer.
var ErrStopped = errors.New("orderer: stopped")

// Orderer is one ordering-service node.
type Orderer struct {
	cfg Config
	id  *identity.Identity

	mu       sync.Mutex
	raftNode *raft.Node // guarded by mu; swapped by Rebind after a leader kill
	pending  []block.Envelope
	delivery []DeliverFunc
	height   uint64
	prevHash []byte
	blocks   int
	txs      int
	fatalErr error

	// Exactly-once accounting across leader failover: every cut batch is
	// stamped with a sequence number; inflight holds cut-but-unapplied
	// batches (re-proposed by Rebind), applied records batch sequences
	// already turned into blocks (a new leader's apply channel replays the
	// whole log, and a re-proposed batch may commit twice).
	batchSeq uint64              // guarded by mu; last assigned batch sequence
	inflight map[uint64][]byte   // guarded by mu; batch seq -> marshaled batch
	applied  map[uint64]struct{} // guarded by mu; batch seqs already applied

	kick   chan struct{} // a size-based cut happened: restart the batch timer
	rebind chan struct{} // the raft node was swapped: re-read it
	stop   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
}

// New creates an orderer bound to a raft node and starts its batching and
// delivery loops. The raft node must be started by the caller (it may be a
// single-node "solo-like" cluster, as in the paper's experiments).
func New(cfg Config, id *identity.Identity, raftNode *raft.Node) *Orderer {
	o := &Orderer{
		cfg:      cfg.withDefaults(),
		id:       id,
		raftNode: raftNode,
		inflight: make(map[uint64][]byte),
		applied:  make(map[uint64]struct{}),
		kick:     make(chan struct{}, 1),
		rebind:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	o.wg.Add(2)
	go o.cutLoop()
	go o.applyLoop()
	go func() {
		o.wg.Wait()
		close(o.done)
	}()
	return o
}

// OnDeliver registers a delivery hook, invoked for every created block in
// order. Register hooks before submitting transactions.
func (o *Orderer) OnDeliver(fn DeliverFunc) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.delivery = append(o.delivery, fn)
}

// Submit queues a transaction envelope for ordering.
func (o *Orderer) Submit(env *block.Envelope) error {
	select {
	case <-o.stop:
		return ErrStopped
	default:
	}
	o.mu.Lock()
	o.pending = append(o.pending, *env)
	full := len(o.pending) >= o.cfg.BatchSize
	o.mu.Unlock()
	if full {
		// A leaderless interval (election in progress after a leader kill)
		// is a transient, not a submission failure: the batch stays queued
		// and the timer cut retries it, exactly like the timeout path.
		if err := o.cut(true); err != nil &&
			!errors.Is(err, raft.ErrNotLeader) && !errors.Is(err, raft.ErrStopped) {
			return err
		}
		// Restart the batch timer: a full-batch cut must not leave a
		// nearly-expired timeout behind to fire immediately and emit a
		// near-empty trailing block (Fabric resets the timer on every
		// block cut).
		select {
		case o.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// cut proposes the current batch to raft. sizeCut records whether the
// batch closed because it filled (vs the batch timer expiring). The batch
// is stamped with a fresh sequence number and tracked as inflight until
// its block is created — Propose returns at leader-log acceptance, not
// commit, so a leader killed in between would otherwise lose the batch
// silently.
func (o *Orderer) cut(sizeCut bool) error {
	o.mu.Lock()
	if len(o.pending) == 0 {
		o.mu.Unlock()
		return nil
	}
	batch := o.pending
	o.pending = nil
	o.batchSeq++
	seq := o.batchSeq
	node := o.raftNode
	o.mu.Unlock()

	data := marshalBatch(batch, seq)
	o.mu.Lock()
	o.inflight[seq] = data
	o.mu.Unlock()
	if err := node.Propose(data); err != nil {
		if errors.Is(err, raft.ErrNotLeader) {
			// A follower rejects the proposal before touching its log,
			// so the batch definitely did not land: requeue the
			// envelopes and let a later cut re-batch them.
			o.mu.Lock()
			delete(o.inflight, seq)
			o.pending = append(batch, o.pending...)
			o.mu.Unlock()
			return fmt.Errorf("order batch: %w", err)
		}
		// ErrStopped is ambiguous: the node may have appended and
		// replicated the entry before the stop was observed (Propose's
		// response select races the stop channel). Re-batching these
		// envelopes under a fresh sequence could then commit them
		// twice — the applied-seq dedup only catches same-seq
		// re-proposals. Keep the batch parked in inflight under its
		// original seq: Rebind re-proposes the identical bytes, and if
		// the orderer was rebound while this propose was failing, retry
		// on the new node here (a duplicate re-propose is harmless —
		// same seq, so createBlock applies it once).
		o.mu.Lock()
		cur := o.raftNode
		o.mu.Unlock()
		if cur != node {
			if rerr := cur.Propose(data); rerr == nil {
				o.cfg.Metrics.ObserveCut(sizeCut)
				return nil
			}
		}
		return fmt.Errorf("order batch: %w", err)
	}
	o.cfg.Metrics.ObserveCut(sizeCut)
	return nil
}

func (o *Orderer) cutLoop() {
	defer o.wg.Done()
	timer := time.NewTimer(o.cfg.BatchTimeout)
	defer timer.Stop()
	reset := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(o.cfg.BatchTimeout)
	}
	for {
		select {
		case <-o.stop:
			return
		case <-o.kick:
			// A size-based cut emptied the batch; the timeout restarts
			// from now.
			reset()
		case <-timer.C:
			// Timeout-based cut; ErrNotLeader is expected on followers
			// and ErrStopped during shutdown.
			if err := o.cut(false); err != nil &&
				!errors.Is(err, raft.ErrNotLeader) && !errors.Is(err, raft.ErrStopped) {
				o.fail(err)
				return
			}
			reset()
		}
	}
}

func (o *Orderer) applyLoop() {
	defer o.wg.Done()
	for {
		o.mu.Lock()
		node := o.raftNode
		o.mu.Unlock()
		select {
		case <-o.stop:
			return
		case <-o.rebind:
			// Rebind swapped the raft node: re-read it and drain the new
			// node's apply channel from here on.
			continue
		case entry := <-node.Apply():
			if err := o.createBlock(entry.Data); err != nil {
				// A delivery-hook or decode failure is fatal for this
				// node: record it so Err/Stop surface it instead of the
				// node dying silently.
				o.fail(err)
				return
			}
		}
	}
}

// Rebind switches the orderer to a new raft node — the failover step after
// its original node was killed — and re-proposes every cut-but-unapplied
// batch through it, in sequence order. Re-proposing a batch that the old
// leader did manage to replicate is safe: batch-sequence deduplication in
// createBlock commits each batch exactly once. Callers pass the cluster's
// newly elected leader; ErrNotLeader (election still settling) is returned
// so the caller can retry.
func (o *Orderer) Rebind(n *raft.Node) error {
	o.mu.Lock()
	o.raftNode = n
	seqs := make([]uint64, 0, len(o.inflight))
	for seq := range o.inflight {
		seqs = append(seqs, seq)
	}
	o.mu.Unlock()
	select {
	case o.rebind <- struct{}{}:
	default:
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		o.mu.Lock()
		data, ok := o.inflight[seq]
		o.mu.Unlock()
		if !ok {
			continue // applied while we were re-proposing
		}
		if err := n.Propose(data); err != nil {
			return fmt.Errorf("orderer: re-propose batch %d: %w", seq, err)
		}
	}
	return nil
}

// fail records the first fatal loop error.
func (o *Orderer) fail(err error) {
	o.mu.Lock()
	if o.fatalErr == nil {
		o.fatalErr = err
	}
	o.mu.Unlock()
}

// Err reports the fatal error that killed a batching or delivery loop,
// if any.
func (o *Orderer) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fatalErr
}

// createBlock turns one committed raft entry (a batch) into the next
// block. A batch sequence seen before is skipped: after a failover the new
// leader's apply channel replays the whole log, and a re-proposed batch
// may legitimately commit twice — deduplication here is what makes the
// pipeline exactly-once.
func (o *Orderer) createBlock(batchData []byte) error {
	envs, seq, err := unmarshalBatch(batchData)
	if err != nil {
		return err
	}
	o.mu.Lock()
	if _, dup := o.applied[seq]; dup {
		o.mu.Unlock()
		return nil
	}
	o.applied[seq] = struct{}{}
	delete(o.inflight, seq)
	num := o.height
	prev := o.prevHash
	o.mu.Unlock()

	b, err := block.NewBlock(num, prev, envs, o.id)
	if err != nil {
		return fmt.Errorf("create block %d: %w", num, err)
	}

	o.mu.Lock()
	o.height = num + 1
	o.prevHash = block.HeaderHash(&b.Header)
	o.blocks++
	o.txs += len(envs)
	hooks := make([]DeliverFunc, len(o.delivery))
	copy(hooks, o.delivery)
	o.mu.Unlock()
	o.cfg.Metrics.ObserveBlock(len(envs))

	for _, fn := range hooks {
		if err := fn(b); err != nil {
			return fmt.Errorf("deliver block %d: %w", num, err)
		}
	}
	return nil
}

// Stats reports blocks and transactions ordered by this node.
func (o *Orderer) Stats() (blocks, txs int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.blocks, o.txs
}

// Height returns the number of blocks created.
func (o *Orderer) Height() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.height
}

// Stop shuts the orderer down (the raft node is stopped separately) and
// reports the fatal error that killed a loop early, if any.
func (o *Orderer) Stop() error {
	select {
	case <-o.stop:
		return o.Err()
	default:
	}
	close(o.stop)
	<-o.done
	return o.Err()
}

// marshalBatch encodes envelopes as repeated length-delimited fields
// (field 1) plus the batch sequence number (field 2, varint) used for
// exactly-once deduplication across leader failover.
func marshalBatch(envs []block.Envelope, seq uint64) []byte {
	out := wire.AppendUint(nil, 2, seq)
	for i := range envs {
		out = wire.AppendBytesAlways(out, 1, block.MarshalEnvelope(&envs[i]))
	}
	return out
}

func unmarshalBatch(data []byte) ([]block.Envelope, uint64, error) {
	var envs []block.Envelope
	var seq uint64
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		switch num {
		case 1:
			env, err := block.UnmarshalEnvelope(r.Bytes())
			if err != nil {
				return nil, 0, err
			}
			envs = append(envs, *env)
		case 2:
			seq = r.Uint()
		default:
			r.Skip(wt)
		}
	}
	if err := r.Err(); err != nil {
		return nil, 0, fmt.Errorf("orderer: batch decode: %w", err)
	}
	return envs, seq, nil
}
