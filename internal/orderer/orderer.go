// Package orderer implements the ordering service: it batches submitted
// transaction envelopes into blocks (block cutting by size or timeout),
// establishes a total order through Raft consensus, signs each block, and
// delivers it — through Gossip to software-only peers and through the BMac
// protocol to hardware peers, exactly the dual path of paper §3.5 ("the
// same orderer can send blocks to both software-only and BMac peers").
package orderer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/raft"
	"bmac/internal/telemetry"
	"bmac/internal/wire"
)

// DeliverFunc receives each newly created block, in order. Hooks are where
// the Gossip broadcaster and the BMac protocol sender attach.
type DeliverFunc func(*block.Block) error

// Config parameterizes the ordering service.
type Config struct {
	// BatchSize is the maximum number of transactions per block.
	BatchSize int
	// BatchTimeout cuts a partial batch after this delay.
	BatchTimeout time.Duration
	// Channel is the channel ID stamped on blocks.
	Channel string
	// Metrics, when non-nil, counts created blocks/txs and batch cuts by
	// reason (size vs timeout) in the telemetry registry. Nil (telemetry
	// off) costs one predicted branch per cut.
	Metrics *telemetry.OrdererMetrics
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchSize == 0 {
		out.BatchSize = 100
	}
	if out.BatchTimeout == 0 {
		out.BatchTimeout = 100 * time.Millisecond
	}
	return out
}

// ErrStopped reports submission to a stopped orderer.
var ErrStopped = errors.New("orderer: stopped")

// Orderer is one ordering-service node.
type Orderer struct {
	cfg      Config
	id       *identity.Identity
	raftNode *raft.Node

	mu       sync.Mutex
	pending  []block.Envelope
	delivery []DeliverFunc
	height   uint64
	prevHash []byte
	blocks   int
	txs      int
	fatalErr error

	kick chan struct{} // a size-based cut happened: restart the batch timer
	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// New creates an orderer bound to a raft node and starts its batching and
// delivery loops. The raft node must be started by the caller (it may be a
// single-node "solo-like" cluster, as in the paper's experiments).
func New(cfg Config, id *identity.Identity, raftNode *raft.Node) *Orderer {
	o := &Orderer{
		cfg:      cfg.withDefaults(),
		id:       id,
		raftNode: raftNode,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	o.wg.Add(2)
	go o.cutLoop()
	go o.applyLoop()
	go func() {
		o.wg.Wait()
		close(o.done)
	}()
	return o
}

// OnDeliver registers a delivery hook, invoked for every created block in
// order. Register hooks before submitting transactions.
func (o *Orderer) OnDeliver(fn DeliverFunc) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.delivery = append(o.delivery, fn)
}

// Submit queues a transaction envelope for ordering.
func (o *Orderer) Submit(env *block.Envelope) error {
	select {
	case <-o.stop:
		return ErrStopped
	default:
	}
	o.mu.Lock()
	o.pending = append(o.pending, *env)
	full := len(o.pending) >= o.cfg.BatchSize
	o.mu.Unlock()
	if full {
		if err := o.cut(true); err != nil {
			return err
		}
		// Restart the batch timer: a full-batch cut must not leave a
		// nearly-expired timeout behind to fire immediately and emit a
		// near-empty trailing block (Fabric resets the timer on every
		// block cut).
		select {
		case o.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// cut proposes the current batch to raft. sizeCut records whether the
// batch closed because it filled (vs the batch timer expiring).
func (o *Orderer) cut(sizeCut bool) error {
	o.mu.Lock()
	if len(o.pending) == 0 {
		o.mu.Unlock()
		return nil
	}
	batch := o.pending
	o.pending = nil
	o.mu.Unlock()

	data := marshalBatch(batch)
	if err := o.raftNode.Propose(data); err != nil {
		// Not the leader (or stopped): requeue so a retry can succeed.
		o.mu.Lock()
		o.pending = append(batch, o.pending...)
		o.mu.Unlock()
		return fmt.Errorf("order batch: %w", err)
	}
	o.cfg.Metrics.ObserveCut(sizeCut)
	return nil
}

func (o *Orderer) cutLoop() {
	defer o.wg.Done()
	timer := time.NewTimer(o.cfg.BatchTimeout)
	defer timer.Stop()
	reset := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(o.cfg.BatchTimeout)
	}
	for {
		select {
		case <-o.stop:
			return
		case <-o.kick:
			// A size-based cut emptied the batch; the timeout restarts
			// from now.
			reset()
		case <-timer.C:
			// Timeout-based cut; ErrNotLeader is expected on followers
			// and ErrStopped during shutdown.
			if err := o.cut(false); err != nil &&
				!errors.Is(err, raft.ErrNotLeader) && !errors.Is(err, raft.ErrStopped) {
				o.fail(err)
				return
			}
			reset()
		}
	}
}

func (o *Orderer) applyLoop() {
	defer o.wg.Done()
	for {
		select {
		case <-o.stop:
			return
		case entry := <-o.raftNode.Apply():
			if err := o.createBlock(entry.Data); err != nil {
				// A delivery-hook or decode failure is fatal for this
				// node: record it so Err/Stop surface it instead of the
				// node dying silently.
				o.fail(err)
				return
			}
		}
	}
}

// fail records the first fatal loop error.
func (o *Orderer) fail(err error) {
	o.mu.Lock()
	if o.fatalErr == nil {
		o.fatalErr = err
	}
	o.mu.Unlock()
}

// Err reports the fatal error that killed a batching or delivery loop,
// if any.
func (o *Orderer) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fatalErr
}

// createBlock turns one committed raft entry (a batch) into the next block.
func (o *Orderer) createBlock(batchData []byte) error {
	envs, err := unmarshalBatch(batchData)
	if err != nil {
		return err
	}
	o.mu.Lock()
	num := o.height
	prev := o.prevHash
	o.mu.Unlock()

	b, err := block.NewBlock(num, prev, envs, o.id)
	if err != nil {
		return fmt.Errorf("create block %d: %w", num, err)
	}

	o.mu.Lock()
	o.height = num + 1
	o.prevHash = block.HeaderHash(&b.Header)
	o.blocks++
	o.txs += len(envs)
	hooks := make([]DeliverFunc, len(o.delivery))
	copy(hooks, o.delivery)
	o.mu.Unlock()
	o.cfg.Metrics.ObserveBlock(len(envs))

	for _, fn := range hooks {
		if err := fn(b); err != nil {
			return fmt.Errorf("deliver block %d: %w", num, err)
		}
	}
	return nil
}

// Stats reports blocks and transactions ordered by this node.
func (o *Orderer) Stats() (blocks, txs int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.blocks, o.txs
}

// Height returns the number of blocks created.
func (o *Orderer) Height() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.height
}

// Stop shuts the orderer down (the raft node is stopped separately) and
// reports the fatal error that killed a loop early, if any.
func (o *Orderer) Stop() error {
	select {
	case <-o.stop:
		return o.Err()
	default:
	}
	close(o.stop)
	<-o.done
	return o.Err()
}

// marshalBatch encodes envelopes as repeated length-delimited fields.
func marshalBatch(envs []block.Envelope) []byte {
	var out []byte
	for i := range envs {
		out = wire.AppendBytesAlways(out, 1, block.MarshalEnvelope(&envs[i]))
	}
	return out
}

func unmarshalBatch(data []byte) ([]block.Envelope, error) {
	var envs []block.Envelope
	r := wire.NewReader(data)
	for {
		num, wt, ok := r.Next()
		if !ok {
			break
		}
		if num != 1 {
			r.Skip(wt)
			continue
		}
		env, err := block.UnmarshalEnvelope(r.Bytes())
		if err != nil {
			return nil, err
		}
		envs = append(envs, *env)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("orderer: batch decode: %w", err)
	}
	return envs, nil
}
