package chaos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/delivery"
	"bmac/internal/identity"
)

func TestParseFault(t *testing.T) {
	for _, name := range append(Faults(), "") {
		if _, err := ParseFault(name); err != nil {
			t.Errorf("ParseFault(%q): %v", name, err)
		}
	}
	if _, err := ParseFault("meteor"); err == nil {
		t.Error("unknown fault accepted")
	}
}

// sink is an in-memory transport/submitter capturing what reaches it.
type sink struct {
	sent []*delivery.Item
	envs []*block.Envelope
}

func (s *sink) Send(it *delivery.Item) (int, error) { s.sent = append(s.sent, it); return 1, nil }
func (s *sink) Close() error                        { return nil }
func (s *sink) Submit(env *block.Envelope) error    { s.envs = append(s.envs, env); return nil }

func TestSwitchSeverHeal(t *testing.T) {
	var sw Switch
	inner := &sink{}
	tr := Severable(inner, &sw)
	it := &delivery.Item{Seq: 1}
	if _, err := tr.Send(it); err != nil {
		t.Fatalf("send through healed switch: %v", err)
	}
	sw.Sever()
	if !sw.Severed() {
		t.Fatal("Severed() false after Sever")
	}
	if _, err := tr.Send(it); !errors.Is(err, ErrSevered) {
		t.Fatalf("send through severed switch: %v, want ErrSevered", err)
	}
	dial := SeverableDialer(func() (delivery.Transport, error) { return inner, nil }, &sw)
	if _, err := dial(); !errors.Is(err, ErrSevered) {
		t.Fatalf("dial through severed switch: %v, want ErrSevered", err)
	}
	sw.Heal()
	sw.Heal() // idempotent: second heal of a closed switch is not counted
	if sw.Heals() != 1 {
		t.Fatalf("Heals() = %d, want 1", sw.Heals())
	}
	if _, err := tr.Send(it); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if tr2, err := dial(); err != nil || tr2 == nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if len(inner.sent) != 2 {
		t.Fatalf("inner transport saw %d sends, want 2", len(inner.sent))
	}
}

// TestDiskFaultCadence pins the shim's contract: every write pays the
// latency, every Nth write fails, and the counters add up.
func TestDiskFaultCadence(t *testing.T) {
	d := &DiskFault{FailEvery: 3}
	hook := d.Hook()
	var failed int
	for i := 0; i < 9; i++ {
		if err := hook(); err != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Errorf("9 writes with FailEvery=3 failed %d times, want 3", failed)
	}
	writes, faults := d.Stats()
	if writes != 9 || faults != 3 {
		t.Errorf("Stats() = (%d, %d), want (9, 3)", writes, faults)
	}
	if err := (&DiskFault{}).Hook()(); err != nil {
		t.Errorf("FailEvery=0 must never fail: %v", err)
	}
}

// TestCorrupterCadenceAndAliasing exercises the real Send path over a
// pipe: with every=2 the first frame arrives intact and the second
// bit-flipped, and — the aliasing regression — the corruption happens in
// a private copy, never in the delivery item's shared marshaled bytes.
func TestCorrupterCadenceAndAliasing(t *testing.T) {
	idnet := identity.NewNetwork()
	if _, err := idnet.AddOrg("Org1"); err != nil {
		t.Fatal(err)
	}
	signer, err := idnet.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := block.NewBlock(0, nil, nil, signer)
	if err != nil {
		t.Fatal(err)
	}
	it := &delivery.Item{Seq: 0, Block: b}
	before := append([]byte(nil), it.Marshaled()...)

	client, server := net.Pipe()
	defer server.Close() // bmaclint:allow errdiscard (test teardown)
	frames := make(chan []byte, 2)
	readErr := make(chan error, 1)
	go func() {
		for i := 0; i < 2; i++ {
			var lenBuf [4]byte
			if _, err := io.ReadFull(server, lenBuf[:]); err != nil {
				readErr <- err
				return
			}
			data := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(server, data); err != nil {
				readErr <- err
				return
			}
			frames <- data
		}
	}()

	c := NewCorrupter(2)
	tr := &corruptingTransport{c: c, conn: client, writeTimeout: time.Second}
	defer tr.Close() // bmaclint:allow errdiscard (test teardown)
	for i := 0; i < 2; i++ {
		if _, err := tr.Send(it); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	recv := func() []byte {
		select {
		case data := <-frames:
			return data
		case err := <-readErr:
			t.Fatalf("read: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("frame never arrived")
		}
		return nil
	}
	if first := recv(); !bytes.Equal(first, before) {
		t.Error("first frame (off-cadence) was corrupted")
	}
	if second := recv(); bytes.Equal(second, before) {
		t.Error("second frame (on-cadence) arrived intact")
	}
	if !bytes.Equal(before, it.Marshaled()) {
		t.Fatal("corruption mutated the shared marshaled bytes")
	}
	sent, flips := c.Stats()
	if sent != 2 || flips != 1 {
		t.Fatalf("Stats() = (%d, %d), want (2, 1)", sent, flips)
	}
}

func TestAdversaryRejectsBadRate(t *testing.T) {
	for _, rate := range []float64{-0.1, 0.95, 1.5} {
		if _, err := NewAdversary(AdversaryOptions{Rate: rate}, &sink{}); err == nil {
			t.Errorf("rate %.2f accepted", rate)
		}
	}
}

// TestAdversaryRateAndMix drives the wrapped submitter and checks the
// hostile fraction of total traffic lands on the configured rate, with
// every hostile kind represented once the replay corpus exists.
func TestAdversaryRateAndMix(t *testing.T) {
	ord := &sink{}
	adv, err := NewAdversary(AdversaryOptions{Rate: 0.5, Seed: 42, Channel: "ch"}, ord)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the replay corpus through the tap, as the cluster harness does.
	tap := adv.Tap(ord)
	honest := &block.Envelope{PayloadBytes: []byte("honest payload"), Signature: []byte("sig")}
	if err := tap.Submit(honest); err != nil {
		t.Fatal(err)
	}

	const honestN = 400
	sub := adv.Wrap(stubSubmitter{})
	for i := 0; i < honestN; i++ {
		if _, err := sub.SubmitTx(); err != nil {
			t.Fatal(err)
		}
	}
	st := adv.Stats()
	if st.Total() < honestN*9/10 || st.Total() > honestN*11/10 {
		t.Fatalf("rate 0.5 over %d honest txs injected %d hostile, want ~%d", honestN, st.Total(), honestN)
	}
	if st.Replay == 0 || st.BadSig == 0 || st.Garbage == 0 || st.Forged == 0 {
		t.Fatalf("mix has empty kinds: %v", st)
	}
	// 1 tap + all hostile envelopes reached the ordering service.
	if int64(len(ord.envs)) != st.Total()+1 {
		t.Fatalf("ordering service saw %d envelopes, want %d", len(ord.envs), st.Total()+1)
	}
}

type stubSubmitter struct{}

func (stubSubmitter) SubmitTx() (string, error) { return "tx", nil }

// TestAdversaryPoolsReuse pins the flood shape: hostile corpora are
// bounded at PoolSize, so sustained injection repeats envelopes — the
// precondition for rejection amortizing to a signature-cache lookup.
func TestAdversaryPoolsReuse(t *testing.T) {
	ord := &sink{}
	adv, err := NewAdversary(AdversaryOptions{Rate: 0.5, Seed: 7, PoolSize: 2}, ord)
	if err != nil {
		t.Fatal(err)
	}
	sub := adv.Wrap(stubSubmitter{})
	for i := 0; i < 200; i++ {
		if _, err := sub.SubmitTx(); err != nil {
			t.Fatal(err)
		}
	}
	distinct := make(map[*block.Envelope]bool)
	for _, env := range ord.envs {
		distinct[env] = true
	}
	// 3 pools (badsig, garbage, forged; nothing captured for replay) of 2.
	if len(distinct) > 6 {
		t.Fatalf("%d distinct hostile envelopes, want <= 6 (pooled reuse)", len(distinct))
	}
}
