package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"os"

	"bmac/internal/delivery"
	"bmac/internal/gossip"
	"bmac/internal/ledger"
	"bmac/internal/raft"
)

// ErrSevered is returned by severed transports and dialers while their
// Switch is open — the in-process stand-in for a network partition.
var ErrSevered = errors.New("chaos: link severed")

// Switch is the control point of a simulated network partition: severing
// it makes every attached transport and dialer fail until it is healed.
// It is safe for concurrent use.
type Switch struct {
	severed atomic.Bool
	heals   atomic.Int64
}

// Sever opens the switch: attached links start failing.
func (s *Switch) Sever() { s.severed.Store(true) }

// Heal closes the switch and counts the heal (idempotent heals of an
// already-closed switch are not counted).
func (s *Switch) Heal() {
	if s.severed.CompareAndSwap(true, false) {
		s.heals.Add(1)
	}
}

// Severed reports whether the link is currently down.
func (s *Switch) Severed() bool { return s.severed.Load() }

// Heals returns how many times the partition has healed.
func (s *Switch) Heals() int64 { return s.heals.Load() }

// Severable wraps a delivery transport so that sends fail with ErrSevered
// while sw is severed. The send failure tears the pipe down to its redial
// path, where the severed dialer keeps it in (backed-off) retry until the
// partition heals.
func Severable(tr delivery.Transport, sw *Switch) delivery.Transport {
	return &severable{tr: tr, sw: sw}
}

type severable struct {
	tr delivery.Transport
	sw *Switch
}

// Send implements delivery.Transport.
func (s *severable) Send(it *delivery.Item) (int, error) {
	if s.sw.Severed() {
		return 0, ErrSevered
	}
	return s.tr.Send(it)
}

// Close implements delivery.Transport.
func (s *severable) Close() error { return s.tr.Close() }

// SeverableDialer wraps a delivery dial function so redials fail while sw
// is severed and produce severable transports once it heals.
func SeverableDialer(dial func() (delivery.Transport, error), sw *Switch) func() (delivery.Transport, error) {
	return func() (delivery.Transport, error) {
		if sw.Severed() {
			return nil, ErrSevered
		}
		tr, err := dial()
		if err != nil {
			return nil, err
		}
		return Severable(tr, sw), nil
	}
}

// Corrupter injects bit-flips into the gossip wire: roughly every Nth
// frame sent through one of its transports is corrupted. The cadence
// drifts after each flip (the period cycles through N..N+2) so it cannot
// phase-lock onto a redelivery loop — with a fixed period, a rewind
// round whose frame count is a multiple of N corrupts the same block
// every round, turning a transient fault into a permanent one that
// exhausts the commit loop's redelivery budget. The frame counter lives
// on the Corrupter, not the transport, so the cadence (and the stats)
// survive the redials its own corruption provokes. The corrupted frame is
// a copy — the delivery item's cached marshaled bytes are shared across
// all peers and must never be mutated. The receiver's decode rejection
// closes the connection, so the sender observes a send error and redials;
// recovery is the delivery service's gap/rewind machinery, which this
// fault exists to exercise.
type Corrupter struct {
	every int

	mu     sync.Mutex
	frames int64 // guarded by mu
	flips  int64 // guarded by mu
	nextAt int64 // guarded by mu; frame number of the next flip
}

// NewCorrupter corrupts roughly every Nth frame (every <= 1 corrupts all
// frames — pass a sensible cadence).
func NewCorrupter(every int) *Corrupter {
	if every < 1 {
		every = 1
	}
	return &Corrupter{every: every, nextAt: int64(every)}
}

// corrupt counts one sent frame and reports whether it should be
// bit-flipped, advancing the drifting cadence.
func (c *Corrupter) corrupt() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames++
	if c.frames < c.nextAt {
		return false
	}
	c.flips++
	c.nextAt = c.frames + int64(c.every)
	if c.every > 1 {
		c.nextAt += c.flips % 3
	}
	return true
}

// Dialer returns a PeerOptions dial function producing corrupting gossip
// transports to addr.
func (c *Corrupter) Dialer(addr string) func() (delivery.Transport, error) {
	return func() (delivery.Transport, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("chaos dial %q: %w", addr, err)
		}
		return &corruptingTransport{c: c, conn: conn, writeTimeout: 10 * time.Second}, nil
	}
}

// Stats reports frames sent through the corrupter's transports and how
// many of them were corrupted.
func (c *Corrupter) Stats() (frames, flips int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames, c.flips
}

type corruptingTransport struct {
	c            *Corrupter
	conn         net.Conn
	writeTimeout time.Duration
}

// Send implements delivery.Transport.
func (t *corruptingTransport) Send(it *delivery.Item) (int, error) {
	raw := it.Marshaled()
	if t.c.corrupt() {
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[len(bad)/2] ^= 0x40
		raw = bad
	}
	if t.writeTimeout > 0 {
		if err := t.conn.SetWriteDeadline(time.Now().Add(t.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return gossip.WriteRaw(t.conn, raw)
}

// Close implements delivery.Transport.
func (t *corruptingTransport) Close() error { return t.conn.Close() }

// DiskFault injects storage trouble under the ledger and checkpoint
// writers: a fixed latency per write plus a transient error on every Nth
// write. The writers retry transient faults internally, so the fault
// manifests as a slow disk, never as data loss. Safe for concurrent use.
type DiskFault struct {
	// Latency is added to every faulted write (the slow half of slow-disk).
	Latency time.Duration
	// FailEvery makes every Nth write return a transient error before any
	// bytes are written (0 disables error injection).
	FailEvery int

	writes atomic.Int64
	faults atomic.Int64
}

// errDiskFault marks injected transient write errors.
var errDiskFault = errors.New("chaos: injected transient disk fault")

// Hook returns the pre-write fault function consumed by
// ledger.Options.CommitFault and peer checkpoint plumbing.
func (d *DiskFault) Hook() func() error {
	return func() error {
		if d.Latency > 0 {
			time.Sleep(d.Latency)
		}
		n := d.writes.Add(1)
		if d.FailEvery > 0 && n%int64(d.FailEvery) == 0 {
			d.faults.Add(1)
			return errDiskFault
		}
		return nil
	}
}

// Stats reports total writes seen and transient faults injected.
func (d *DiskFault) Stats() (writes, faults int64) {
	return d.writes.Load(), d.faults.Load()
}

// WaitForNewLeader waits for a leader among the cluster's nodes other
// than the excluded (killed) index. It exists because a stopped node's
// Status may still read Leader — Cluster.WaitForLeader would return the
// corpse.
func WaitForNewLeader(c *raft.Cluster, exclude int, timeout time.Duration) (*raft.Node, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, n := range c.Nodes {
			if i == exclude {
				continue
			}
			if _, state, _ := n.Status(); state == raft.Leader {
				return n, nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: no new leader within %v (excluding node %d)", timeout, exclude)
}

// CorruptSealedSegment flips one byte in the record region of the oldest
// sealed segment file in a ledger directory — the bit-rot fault the
// quarantine path exists for. It must run while the ledger is closed (a
// churned-down peer); the corruption is discovered either by the open-time
// checksum sweep or by the first Get that touches the segment. Returns the
// path of the corrupted file, or an error when the directory holds no
// sealed segment.
func CorruptSealedSegment(dir string) (string, error) {
	paths, err := ledger.SealedSegmentPaths(dir)
	if err != nil {
		return "", fmt.Errorf("chaos: list sealed segments: %w", err)
	}
	if len(paths) == 0 {
		return "", errors.New("chaos: no sealed segment to corrupt")
	}
	path := paths[0]
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return "", fmt.Errorf("chaos: open segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return "", fmt.Errorf("chaos: stat segment: %w", err)
	}
	// Flip a byte in the middle of the record region, clear of the 64-byte
	// footer, so the footer parses but its checksum no longer matches.
	off := (fi.Size() - 64) / 2
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return "", fmt.Errorf("chaos: read segment: %w", err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		return "", fmt.Errorf("chaos: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return "", fmt.Errorf("chaos: sync segment: %w", err)
	}
	return path, nil
}
