// Package chaos is the fault-injection plane of the cluster harness: an
// adversarial workload generator plus composable chaos faults, turning the
// honest-but-slow scenarios (slow peers, churn, modeled latency) into
// hostile ones. The paper's line-rate validation thesis is only credible
// if rejection is cheap under attack — the closed-format decoder and the
// failure-caching signature cache were built exactly for that, and this
// package is how the claim becomes a machine-checked gate.
//
// Two independent axes compose freely:
//
//   - The Adversary (adversary.go) floods the ordering service with
//     hostile transactions alongside the honest load: corrupt client
//     signatures, malformed payload bytes, forged self-endorsed envelopes
//     and verbatim replays of captured honest envelopes (the double-spend
//     storm — replayed read sets are stale, so every copy past the first
//     loses MVCC). All of them are flag-invalidated deterministically by
//     every peer, so convergence is preserved by construction while the
//     valid-transaction throughput gate measures the cost of rejection.
//
//   - Chaos faults (faults.go) break the infrastructure under load: a
//     network partition severing a peer's delivery link (Switch +
//     SeverableTransport), bit-flip corruption on the gossip wire
//     (CorruptingTransport), a slow or flaky disk under the ledger and
//     checkpoint writers (DiskFault), and a raft leader kill mid-batch
//     (WaitForNewLeader + orderer.Rebind).
//
// The cluster harness (internal/cluster) wires both axes through
// Options.Adversary and Options.Fault, and the `adversarial` experiment
// asserts the gates: invalid floods cannot degrade valid-tx TPS below a
// bound, and every fault scenario ends with the fast peers converged
// bit-identical (statedb.SnapshotHash equality).
package chaos

import "fmt"

// Fault scenario names accepted by cluster.Options.Fault and the bmacnet
// -fault flag.
const (
	// FaultLeaderKill stops the raft leader mid-run; the orderer is
	// rebound to the new leader and every cut-but-unapplied batch is
	// re-proposed (exactly-once via batch-sequence dedup).
	FaultLeaderKill = "leaderkill"
	// FaultPartition severs one fast peer's delivery link mid-run and
	// heals it after the retained window has moved on, forcing redial
	// backoff plus ledger-backed catch-up.
	FaultPartition = "partition"
	// FaultCorruption flips bits in periodic gossip frames to one fast
	// peer; the receiver's decode rejection kills the connection and the
	// peer self-heals through the deliver protocol's Rewind request.
	FaultCorruption = "corruption"
	// FaultSlowDisk injects latency and transient write errors under one
	// fast peer's ledger and checkpoint writers.
	FaultSlowDisk = "slowdisk"
)

// Faults lists the fault scenario names in presentation order.
func Faults() []string {
	return []string{FaultLeaderKill, FaultPartition, FaultCorruption, FaultSlowDisk}
}

// ParseFault validates a fault scenario name ("" means no fault).
func ParseFault(s string) (string, error) {
	switch s {
	case "", FaultLeaderKill, FaultPartition, FaultCorruption, FaultSlowDisk:
		return s, nil
	default:
		return "", fmt.Errorf("chaos: unknown fault %q (valid: %v)", s, Faults())
	}
}
