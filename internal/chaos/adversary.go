package chaos

import (
	"fmt"
	mrand "math/rand"
	"sync"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/load"
)

// OrderSubmitter receives assembled envelopes (the ordering service);
// *orderer.Orderer implements it, as does any client.Submitter.
type OrderSubmitter interface {
	Submit(*block.Envelope) error
}

// Hostile transaction kinds, in mix order.
const (
	// KindReplay resubmits a captured honest envelope verbatim: the
	// signatures verify (warming the failure/success cache either way),
	// the txid duplicates an already-committed transaction, and the read
	// set is stale — the double-spend storm. Every copy past the first is
	// flagged MVCCReadConflict.
	KindReplay = "replay"
	// KindBadSig repeats envelopes whose client signature is corrupted:
	// the first rejection pays the curve math, every repeat must be a
	// signature-cache lookup (the failure-caching O(lookup) claim).
	KindBadSig = "badsig"
	// KindGarbage submits undecodable payload bytes, rejected by the
	// closed-format transaction parser as BadPayload.
	KindGarbage = "garbage"
	// KindForged submits structurally valid envelopes signed by a
	// self-issued identity with a self-endorsement: certificates parse and
	// signatures verify, but the endorsement policy fails.
	KindForged = "forged"
)

// AdversaryOptions parameterize hostile-traffic injection.
type AdversaryOptions struct {
	// Rate is the hostile fraction of total submitted traffic, in [0, 0.9]
	// (0.5 means one hostile envelope per honest one).
	Rate float64
	// Seed makes the attack traffic deterministic.
	Seed int64
	// Channel is the channel id stamped on forged envelopes.
	Channel string
	// PoolSize bounds the reusable corpus per hostile kind (default 4):
	// small pools model a real flood, where the same garbage is replayed
	// at volume and rejection must amortize to a cache lookup.
	PoolSize int
}

// AdversaryStats counts injected hostile envelopes per kind.
type AdversaryStats struct {
	Replay  int64
	BadSig  int64
	Garbage int64
	Forged  int64
}

// Total sums all kinds.
func (s AdversaryStats) Total() int64 { return s.Replay + s.BadSig + s.Garbage + s.Forged }

// String renders the per-kind counts.
func (s AdversaryStats) String() string {
	return fmt.Sprintf("%d hostile (replay %d, badsig %d, garbage %d, forged %d)",
		s.Total(), s.Replay, s.BadSig, s.Garbage, s.Forged)
}

// Adversary generates and injects hostile transactions into an ordering
// service at a configured fraction of the total traffic. All methods are
// safe for concurrent use (the cluster's load clients share one Adversary).
type Adversary struct {
	opts AdversaryOptions
	ord  OrderSubmitter
	id   *identity.Identity // self-issued; unknown to every policy

	mu       sync.Mutex
	rng      *mrand.Rand       // guarded by mu
	owed     float64           // guarded by mu; hostile submissions owed to keep the rate
	captured []*block.Envelope // guarded by mu; honest envelopes available for replay
	badsig   []*block.Envelope // guarded by mu; reusable corrupt-signature corpus
	garbage  []*block.Envelope // guarded by mu; reusable undecodable corpus
	forged   []*block.Envelope // guarded by mu; reusable self-endorsed corpus
	stats    AdversaryStats    // guarded by mu
}

// NewAdversary creates an adversary submitting to ord. The adversary owns
// a self-issued identity (its own CA, unknown to the honest network), so
// its forged envelopes are structurally perfect yet policy-invalid.
func NewAdversary(opts AdversaryOptions, ord OrderSubmitter) (*Adversary, error) {
	if opts.Rate < 0 || opts.Rate > 0.9 {
		return nil, fmt.Errorf("chaos: adversary rate %.2f out of range [0, 0.9]", opts.Rate)
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	net := identity.NewNetwork()
	if _, err := net.AddOrg("Mallory"); err != nil {
		return nil, fmt.Errorf("chaos: adversary org: %w", err)
	}
	id, err := net.NewIdentity("Mallory", identity.RoleClient)
	if err != nil {
		return nil, fmt.Errorf("chaos: adversary identity: %w", err)
	}
	return &Adversary{
		opts: opts,
		ord:  ord,
		id:   id,
		rng:  mrand.New(mrand.NewSource(opts.Seed ^ 0x5eed)),
	}, nil
}

// Stats snapshots the injected-envelope counters.
func (a *Adversary) Stats() AdversaryStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Tap wraps the honest path to the ordering service, capturing a sample of
// honest envelopes into the replay corpus before forwarding them.
func (a *Adversary) Tap(inner OrderSubmitter) OrderSubmitter {
	return &tapSubmitter{a: a, inner: inner}
}

type tapSubmitter struct {
	a     *Adversary
	inner OrderSubmitter
}

func (t *tapSubmitter) Submit(env *block.Envelope) error {
	t.a.capture(env)
	return t.inner.Submit(env)
}

// capture retains env for replay (bounded reservoir; envelopes are
// immutable once submitted, so sharing the backing bytes is safe).
func (a *Adversary) capture(env *block.Envelope) {
	const corpus = 64
	a.mu.Lock()
	if len(a.captured) < corpus {
		a.captured = append(a.captured, env)
	} else {
		a.captured[a.rng.Intn(corpus)] = env
	}
	a.mu.Unlock()
}

// Wrap decorates an honest load submitter: before each honest submission,
// enough hostile envelopes are injected to hold the hostile fraction of
// total traffic at the configured rate.
func (a *Adversary) Wrap(inner load.Submitter) load.Submitter {
	return &hostileSubmitter{a: a, inner: inner}
}

type hostileSubmitter struct {
	a     *Adversary
	inner load.Submitter
}

func (h *hostileSubmitter) SubmitTx() (string, error) {
	if err := h.a.injectBurst(); err != nil {
		return "", err
	}
	return h.inner.SubmitTx()
}

// injectBurst submits the hostile envelopes owed for one honest
// submission: rate r of total traffic means r/(1-r) hostile per honest,
// accumulated fractionally so any rate is hit exactly in the long run.
func (a *Adversary) injectBurst() error {
	if a.opts.Rate <= 0 {
		return nil
	}
	a.mu.Lock()
	a.owed += a.opts.Rate / (1 - a.opts.Rate)
	n := int(a.owed)
	a.owed -= float64(n)
	a.mu.Unlock()
	for i := 0; i < n; i++ {
		env, err := a.nextHostile()
		if err != nil {
			return err
		}
		if err := a.ord.Submit(env); err != nil {
			return fmt.Errorf("chaos: hostile submit: %w", err)
		}
	}
	return nil
}

// nextHostile draws one hostile envelope from the mix. The weights lean on
// repeated/replayed traffic — the realistic flood shape, and the one the
// failure-caching hot path is built to absorb.
func (a *Adversary) nextHostile() (*block.Envelope, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch p := a.rng.Float64(); {
	case p < 0.40:
		if env := a.replayLocked(); env != nil {
			a.stats.Replay++
			return env, nil
		}
		fallthrough // nothing captured yet: fall back to the badsig corpus
	case p < 0.65:
		env, err := a.fromPoolLocked(&a.badsig, a.newBadSigLocked)
		if err == nil {
			a.stats.BadSig++
		}
		return env, err
	case p < 0.90:
		env, err := a.fromPoolLocked(&a.garbage, a.newGarbageLocked)
		if err == nil {
			a.stats.Garbage++
		}
		return env, err
	default:
		env, err := a.fromPoolLocked(&a.forged, a.newForgedLocked)
		if err == nil {
			a.stats.Forged++
		}
		return env, err
	}
}

// replayLocked picks a captured honest envelope, nil when none exists yet.
// It must be called with a.mu held.
func (a *Adversary) replayLocked() *block.Envelope {
	if len(a.captured) == 0 {
		return nil
	}
	return a.captured[a.rng.Intn(len(a.captured))]
}

// fromPoolLocked returns a pooled envelope, lazily filling the pool with
// gen up to PoolSize before reusing entries round-robin via the rng. It
// must be called with a.mu held.
func (a *Adversary) fromPoolLocked(pool *[]*block.Envelope, gen func() (*block.Envelope, error)) (*block.Envelope, error) {
	if len(*pool) < a.opts.PoolSize {
		env, err := gen()
		if err != nil {
			return nil, err
		}
		*pool = append(*pool, env)
		return env, nil
	}
	return (*pool)[a.rng.Intn(len(*pool))], nil
}

// newBadSigLocked builds a self-endorsed envelope whose client signature is
// corrupted: the creator certificate parses, so rejection lands on the
// (cacheable) signature verification itself.
func (a *Adversary) newBadSigLocked() (*block.Envelope, error) {
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator:          a.id,
		Chaincode:        "smallbank",
		Channel:          a.opts.Channel,
		RWSet:            a.hostileRWSetLocked(),
		Endorsers:        []*identity.Identity{a.id},
		CorruptClientSig: true,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: badsig envelope: %w", err)
	}
	return env, nil
}

// newGarbageLocked builds an envelope whose payload bytes cannot decode: the
// closed-format parser must reject it (BadPayload) without panicking.
func (a *Adversary) newGarbageLocked() (*block.Envelope, error) {
	payload := make([]byte, 32+a.rng.Intn(224))
	a.rng.Read(payload) // bmaclint:allow errdiscard (math/rand Read never fails)
	sig := make([]byte, 70)
	a.rng.Read(sig) // bmaclint:allow errdiscard (math/rand Read never fails)
	return &block.Envelope{PayloadBytes: payload, Signature: sig}, nil
}

// newForgedLocked builds a structurally valid envelope endorsed only by the
// adversary's self-issued identity: every signature verifies, but the
// endorsement policy has never heard of org Mallory.
func (a *Adversary) newForgedLocked() (*block.Envelope, error) {
	env, err := block.NewEndorsedEnvelope(block.TxSpec{
		Creator:   a.id,
		Chaincode: "smallbank",
		Channel:   a.opts.Channel,
		RWSet:     a.hostileRWSetLocked(),
		Endorsers: []*identity.Identity{a.id},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: forged envelope: %w", err)
	}
	return env, nil
}

// hostileRWSetLocked targets hot low-numbered smallbank accounts at the
// genesis version — the stale-read shape of a double-spend attempt. It
// must be called with a.mu held.
func (a *Adversary) hostileRWSetLocked() block.RWSet {
	key := fmt.Sprintf("checking_%d", a.rng.Intn(4))
	return block.RWSet{
		Reads:  []block.KVRead{{Key: key, Version: block.Version{}}},
		Writes: []block.KVWrite{{Key: key, Value: []byte("0")}},
	}
}
