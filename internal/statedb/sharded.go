package statedb

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bmac/internal/block"
)

// ShardedStore is a lock-striped software state database: N independent
// shards, each with its own map and RWMutex, selected by key hash. It
// removes the single-mutex bottleneck of Store under the parallel commit
// engine, where the prefetch stage, the mvcc stage of block n+1 and the
// flush of block n all hit the database concurrently.
//
// Atomicity is per shard: WriteBatch locks each touched shard once, so the
// writes of one transaction land shard-atomically. The commit engines apply
// transaction write sets from a single flusher (or from disjoint-key
// transactions), so cross-shard atomicity is not required for correctness.
type ShardedStore struct {
	shards []shardedStripe

	// count gates the access counters (see Store.SetCountAccesses).
	count  atomic.Bool
	reads  atomic.Int64
	writes atomic.Int64
}

type shardedStripe struct {
	mu   sync.RWMutex
	data map[string]VersionedValue // guarded by mu
}

// DefaultShards is the stripe count used when none is configured.
const DefaultShards = 16

// NewShardedStore creates an empty sharded store with n lock stripes
// (DefaultShards when n < 1).
func NewShardedStore(n int) *ShardedStore {
	if n < 1 {
		n = DefaultShards
	}
	s := &ShardedStore{shards: make([]shardedStripe, n)}
	s.count.Store(true)
	for i := range s.shards {
		s.shards[i] = shardedStripe{data: make(map[string]VersionedValue)}
	}
	return s
}

// SetCountAccesses enables or disables the read/write access counters
// (enabled by default); disabled counters are one predicted branch per
// access.
func (s *ShardedStore) SetCountAccesses(on bool) { s.count.Store(on) }

// ShardCount reports the number of lock stripes.
func (s *ShardedStore) ShardCount() int { return len(s.shards) }

// shardIndex selects the stripe index for key (FNV-1a).
func (s *ShardedStore) shardIndex(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

func (s *ShardedStore) shardOf(key string) *shardedStripe {
	return &s.shards[s.shardIndex(key)]
}

// Get returns the versioned value for key.
func (s *ShardedStore) Get(key string) (VersionedValue, error) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	sh.mu.RUnlock()
	if s.count.Load() {
		s.reads.Add(1)
	}
	if !ok {
		return VersionedValue{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

// Version returns the current version of key; ok=false when absent.
func (s *ShardedStore) Version(key string) (block.Version, bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	v, ok := sh.data[key]
	sh.mu.RUnlock()
	if s.count.Load() {
		s.reads.Add(1)
	}
	return v.Version, ok
}

// Put inserts a single value.
func (s *ShardedStore) Put(key string, value []byte, ver block.Version) {
	s.WriteBatch([]block.KVWrite{{Key: key, Value: value}}, ver)
}

// WriteBatch applies a write set with the given version: each key is
// hashed once, writes are grouped by stripe, and each touched shard is
// locked exactly once.
func (s *ShardedStore) WriteBatch(writes []block.KVWrite, ver block.Version) {
	if len(writes) == 0 {
		return
	}
	if len(writes) == 1 {
		w := writes[0]
		sh := s.shardOf(w.Key)
		val := make([]byte, len(w.Value))
		copy(val, w.Value)
		sh.mu.Lock()
		sh.data[w.Key] = VersionedValue{Value: val, Version: ver}
		sh.mu.Unlock()
		if s.count.Load() {
			s.writes.Add(1)
		}
		return
	}
	byShard := make(map[int][]block.KVWrite)
	for _, w := range writes {
		i := s.shardIndex(w.Key)
		byShard[i] = append(byShard[i], w)
	}
	for i, ws := range byShard {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, w := range ws {
			val := make([]byte, len(w.Value))
			copy(val, w.Value)
			sh.data[w.Key] = VersionedValue{Value: val, Version: ver}
		}
		sh.mu.Unlock()
		if s.count.Load() {
			s.writes.Add(int64(len(ws)))
		}
	}
}

// MVCCCheck re-reads each read-set key and compares versions.
func (s *ShardedStore) MVCCCheck(reads []block.KVRead) error {
	return CheckMVCC(s.Version, reads)
}

// Len reports the number of keys across all shards.
func (s *ShardedStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// AccessCounts reports cumulative reads and writes.
func (s *ShardedStore) AccessCounts() (reads, writes int) {
	return int(s.reads.Load()), int(s.writes.Load())
}

// Snapshot returns a copy of the full database.
func (s *ShardedStore) Snapshot() map[string]VersionedValue {
	out := make(map[string]VersionedValue)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.data {
			val := make([]byte, len(v.Value))
			copy(val, v.Value)
			out[k] = VersionedValue{Value: val, Version: v.Version}
		}
		sh.mu.RUnlock()
	}
	return out
}
