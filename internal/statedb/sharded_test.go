package statedb

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"bmac/internal/block"
)

func TestShardedBasic(t *testing.T) {
	s := NewShardedStore(8)
	if s.ShardCount() != 8 {
		t.Fatalf("shards = %d", s.ShardCount())
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("expected ErrNotFound")
	}
	ver := block.Version{BlockNum: 3, TxNum: 1}
	s.Put("k", []byte("v"), ver)
	v, err := s.Get("k")
	if err != nil || string(v.Value) != "v" || v.Version != ver {
		t.Fatalf("get = %+v, %v", v, err)
	}
	got, ok := s.Version("k")
	if !ok || got != ver {
		t.Fatalf("version = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	reads, writes := s.AccessCounts()
	if reads != 3 || writes != 1 {
		t.Errorf("access counts = %d/%d", reads, writes)
	}
}

// TestShardedMatchesStore property-checks that a ShardedStore (any stripe
// count) and a plain Store agree on every read and on the final snapshot
// after the same operation sequence.
func TestShardedMatchesStore(t *testing.T) {
	type op struct {
		Key  uint8
		Val  uint8
		Read bool
	}
	f := func(shardsRaw uint8, ops []op) bool {
		ref := NewStore()
		s := NewShardedStore(int(shardsRaw%16) + 1)
		for i, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%32)
			if o.Read {
				rv, refErr := ref.Get(key)
				sv, sErr := s.Get(key)
				if (refErr == nil) != (sErr == nil) {
					return false
				}
				if refErr == nil && (string(rv.Value) != string(sv.Value) || rv.Version != sv.Version) {
					return false
				}
				continue
			}
			ver := block.Version{BlockNum: uint64(i)}
			ref.Put(key, []byte{o.Val}, ver)
			s.Put(key, []byte{o.Val}, ver)
		}
		return SnapshotsEqual(ref.Snapshot(), s.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConcurrent hammers disjoint key ranges from parallel writers
// with interleaved readers; run with -race. Each writer owns its key range,
// so the final state is deterministic.
func TestShardedConcurrent(t *testing.T) {
	s := NewShardedStore(4)
	const writers, keysPer = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i)
				s.WriteBatch([]block.KVWrite{{Key: key, Value: []byte{byte(i)}}},
					block.Version{BlockNum: uint64(w), TxNum: uint64(i)})
				if _, err := s.Get(key); err != nil {
					t.Errorf("read-own-write %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*keysPer {
		t.Fatalf("len = %d, want %d", got, writers*keysPer)
	}
	if err := s.MVCCCheck([]block.KVRead{
		{Key: "w1/k2", Version: block.Version{BlockNum: 1, TxNum: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.MVCCCheck([]block.KVRead{{Key: "w1/k2"}}); err == nil {
		t.Fatal("stale read must conflict")
	}
}

// TestShardedWriteBatchLocksEachShardOnce is a behavioural guard for the
// batched write path: a batch spanning many shards must land every write.
func TestShardedWriteBatchSpansShards(t *testing.T) {
	s := NewShardedStore(4)
	var writes []block.KVWrite
	for i := 0; i < 64; i++ {
		writes = append(writes, block.KVWrite{Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
	}
	ver := block.Version{BlockNum: 9}
	s.WriteBatch(writes, ver)
	for i := 0; i < 64; i++ {
		got, ok := s.Version(fmt.Sprintf("k%d", i))
		if !ok || got != ver {
			t.Fatalf("k%d version = %v, %v", i, got, ok)
		}
	}
}
