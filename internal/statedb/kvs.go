package statedb

import (
	"fmt"

	"bmac/internal/block"
)

// KVS is the versioned key-value contract shared by every state-database
// backend. The software validator, the parallel commit engine and the
// endorsement simulator all run against this interface, so a peer can be
// pointed at the in-memory Store, the paper's §5 hybrid hardware/host
// database (HybridKVS) or the lock-striped ShardedStore without touching
// the validation code.
type KVS interface {
	// Get returns the versioned value for key; a missing key reports an
	// error wrapping ErrNotFound.
	Get(key string) (VersionedValue, error)
	// Version returns the current version of key; ok=false when absent
	// (Fabric's zero-version semantics apply to absent keys).
	Version(key string) (block.Version, bool)
	// Put inserts a single value.
	Put(key string, value []byte, ver block.Version)
	// WriteBatch applies the write set of one transaction with the given
	// version. Batches of different transactions may be applied
	// concurrently only when their key sets are disjoint (the commit
	// engines guarantee this).
	WriteBatch(writes []block.KVWrite, ver block.Version)
	// MVCCCheck re-reads each read-set key and compares versions,
	// returning nil when the transaction is serializable.
	MVCCCheck(reads []block.KVRead) error
	// Len reports the number of live keys.
	Len() int
	// AccessCounts reports cumulative reads and writes (experiment
	// metrics).
	AccessCounts() (reads, writes int)
	// SetCountAccesses enables or disables the access counters feeding
	// AccessCounts. Counting defaults to on (the experiment-friendly
	// setting); load-driving hot paths that never read the counters turn
	// it off, reducing each access's accounting cost to one predicted
	// branch. Backends whose counters are free by construction (e.g.
	// HybridKVS, which counts under a mutex it already holds) may treat
	// this as a no-op.
	SetCountAccesses(on bool)
	// Snapshot returns a copy of the authoritative database contents.
	Snapshot() map[string]VersionedValue
}

// Compile-time checks that every backend satisfies the interface.
var (
	_ KVS = (*Store)(nil)
	_ KVS = (*HybridKVS)(nil)
	_ KVS = (*ShardedStore)(nil)
)

// CheckMVCC implements the Fabric mvcc rule over any version source: every
// read's endorsed version must equal the current one, and absent keys match
// only the zero version. Each backend's MVCCCheck delegates here so all of
// them agree byte-for-byte on conflict semantics (and error text).
func CheckMVCC(version func(key string) (block.Version, bool), reads []block.KVRead) error {
	for _, r := range reads {
		cur, ok := version(r.Key)
		if !ok {
			if r.Version != (block.Version{}) {
				return fmt.Errorf("statedb: mvcc conflict on %q: expected %v, key deleted", r.Key, r.Version)
			}
			continue
		}
		if cur != r.Version {
			return fmt.Errorf("statedb: mvcc conflict on %q: expected %v, have %v", r.Key, r.Version, cur)
		}
	}
	return nil
}
