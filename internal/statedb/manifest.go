package statedb

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint manifest: the durable link between state snapshots and ledger
// heights that makes snapshot fast-sync safe. Each checkpoint is written
// to its own generation file ("checkpoint-<height>") and the MANIFEST
// records the retained generations; recovery walks them newest-first and
// falls back to an older generation when the newest is corrupt or ahead
// of the (possibly truncated) ledger — a single bad checkpoint therefore
// costs extra replay, never a dead peer. Keeping more than one generation
// is what turns checkpoint corruption from fatal into a retry.
//
// MANIFEST layout (big-endian):
//
//	magic "BMACMAN1" [8]
//	count u64
//	count × { height u64 | nameLen u32 | name }
//	sha256 [32] over everything above
//
// The file is written atomically (temp + fsync + rename + dir-sync). A
// missing or corrupt manifest degrades to a directory scan for
// "checkpoint-*" files — slower and unordered-by-trust, never fatal.

var manifestMagic = [8]byte{'B', 'M', 'A', 'C', 'M', 'A', 'N', '1'}

// ManifestFile is the checkpoint manifest's file name.
const ManifestFile = "MANIFEST"

// ckptGenPrefix prefixes per-generation checkpoint files.
const ckptGenPrefix = "checkpoint-"

// DefaultKeepCheckpoints is how many checkpoint generations are retained
// when the caller does not say otherwise. Two: the newest for fast-sync,
// plus one fallback in case the newest is corrupt or ahead of the ledger.
const DefaultKeepCheckpoints = 2

// ErrCorruptManifest reports a manifest that failed structural or checksum
// validation (recovery falls back to a directory scan).
var ErrCorruptManifest = errors.New("statedb: corrupt checkpoint manifest")

// CheckpointRef names one retained checkpoint generation.
type CheckpointRef struct {
	File   string // base file name within the peer directory
	Height uint64 // state height the checkpoint was taken at
}

// ckptGenName returns the generation file name for a height. Heights are
// zero-padded so lexical and numeric order agree.
func ckptGenName(height uint64) string {
	return fmt.Sprintf("%s%012d", ckptGenPrefix, height)
}

// parseCkptGenName extracts the height from a generation file name.
func parseCkptGenName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptGenPrefix) {
		return 0, false
	}
	h, err := strconv.ParseUint(strings.TrimPrefix(name, ckptGenPrefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return h, true
}

// writeManifest atomically writes the manifest for refs (newest first).
func writeManifest(dir string, refs []CheckpointRef) error {
	var buf []byte
	buf = append(buf, manifestMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(refs)))
	for _, r := range refs {
		buf = binary.BigEndian.AppendUint64(buf, r.Height)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.File)))
		buf = append(buf, r.File...)
	}
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)

	path := filepath.Join(dir, ManifestFile)
	tmp, err := os.CreateTemp(dir, ManifestFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("statedb: manifest temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(step string, err error) error {
		tmp.Close()        // bmaclint:allow errdiscard (cleanup of failed temp write)
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
		return fmt.Errorf("statedb: manifest %s: %w", step, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
		return fmt.Errorf("statedb: manifest close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) // bmaclint:allow errdiscard (cleanup of failed temp write)
		return fmt.Errorf("statedb: manifest rename: %w", err)
	}
	return syncDir(dir)
}

// loadManifest reads and validates the manifest, returning refs in the
// stored (newest-first) order.
func loadManifest(dir string) ([]CheckpointRef, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	if len(raw) < 8+8+sha256.Size || !bytes.Equal(raw[:8], manifestMagic[:]) {
		return nil, fmt.Errorf("%w: bad header", ErrCorruptManifest)
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptManifest)
	}
	r := body[8:]
	if len(r) < 8 {
		return nil, fmt.Errorf("%w: truncated", ErrCorruptManifest)
	}
	count := binary.BigEndian.Uint64(r[:8])
	r = r[8:]
	if count > uint64(len(body)) {
		return nil, fmt.Errorf("%w: absurd entry count", ErrCorruptManifest)
	}
	refs := make([]CheckpointRef, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(r) < 12 {
			return nil, fmt.Errorf("%w: truncated entry", ErrCorruptManifest)
		}
		h := binary.BigEndian.Uint64(r[:8])
		n := int(binary.BigEndian.Uint32(r[8:12]))
		r = r[12:]
		if len(r) < n {
			return nil, fmt.Errorf("%w: truncated entry", ErrCorruptManifest)
		}
		name := string(r[:n])
		r = r[n:]
		if strings.ContainsAny(name, "/\\") {
			return nil, fmt.Errorf("%w: entry name escapes directory", ErrCorruptManifest)
		}
		refs = append(refs, CheckpointRef{File: name, Height: h})
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorruptManifest)
	}
	return refs, nil
}

// WriteManagedCheckpoint saves a checkpoint generation for the current
// state at height into dir and rolls the manifest: the new generation is
// prepended, the newest keep generations are retained and older ones are
// deleted only after the updated manifest is durable (a crash mid-cleanup
// leaves orphan files, which the next write sweeps). keep <= 0 means
// DefaultKeepCheckpoints. The fault hook is the chaos slow-disk injection
// point, threaded through to the snapshot writer. Returns the retained
// generations, newest first — callers prune ledger history against the
// *oldest* retained height, never the newest.
func WriteManagedCheckpoint(dir string, kvs KVS, height uint64, keep int, fault func() error) ([]CheckpointRef, error) {
	if keep <= 0 {
		keep = DefaultKeepCheckpoints
	}
	name := ckptGenName(height)
	if err := SaveCheckpointFault(filepath.Join(dir, name), kvs, height, fault); err != nil {
		return nil, err
	}
	refs, err := loadManifest(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		// Corrupt manifest: rebuild it from the files on disk.
		refs = scanCheckpointFiles(dir)
	}
	// Prepend/replace the new generation and keep newest-first order.
	out := []CheckpointRef{{File: name, Height: height}}
	for _, r := range refs {
		if r.File != name {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Height > out[j].Height })
	var drop []string
	if len(out) > keep {
		for _, r := range out[keep:] {
			drop = append(drop, r.File)
		}
		out = out[:keep]
	}
	if err := writeManifest(dir, out); err != nil {
		return nil, err
	}
	for _, f := range drop {
		os.Remove(filepath.Join(dir, f)) // bmaclint:allow errdiscard (orphan generations are swept on the next write)
	}
	return out, nil
}

// scanCheckpointFiles lists on-disk checkpoint generations newest-first —
// the fallback when the manifest is missing or corrupt.
func scanCheckpointFiles(dir string) []CheckpointRef {
	matches, err := filepath.Glob(filepath.Join(dir, ckptGenPrefix+"*"))
	if err != nil {
		return nil
	}
	var refs []CheckpointRef
	for _, m := range matches {
		if h, ok := parseCkptGenName(filepath.Base(m)); ok {
			refs = append(refs, CheckpointRef{File: filepath.Base(m), Height: h})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Height > refs[j].Height })
	return refs
}

// Checkpoints returns the recovery candidates in dir, newest-first, plus
// human-readable notes about any degradation met along the way (corrupt
// manifest, scan fallback). A legacy un-suffixed checkpoint file (from the
// pre-manifest layout) is appended last so old peer directories still
// fast-sync. The refs are candidates, not guarantees — recovery validates
// each with LoadCheckpoint and falls through on failure.
func Checkpoints(dir string, legacyFile string) ([]CheckpointRef, []string) {
	var notes []string
	refs, err := loadManifest(dir)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			notes = append(notes, fmt.Sprintf("checkpoint manifest unreadable (%v); scanning directory", err))
		}
		refs = scanCheckpointFiles(dir)
		if err == nil || len(refs) > 0 {
			sort.Slice(refs, func(i, j int) bool { return refs[i].Height > refs[j].Height })
		}
	}
	if legacyFile != "" {
		if _, err := os.Stat(filepath.Join(dir, legacyFile)); err == nil {
			// Height unknown until loaded; 0 keeps it ordered last.
			refs = append(refs, CheckpointRef{File: legacyFile, Height: 0})
		}
	}
	return refs, notes
}
