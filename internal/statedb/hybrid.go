package statedb

import (
	"container/list"
	"sync"

	"bmac/internal/block"
)

// HybridKVS implements the paper's §5 database-scaling proposal: "use the
// in-hardware database for a small amount of actively accessed data, while
// keeping a persistent database on the host CPU". It is a fixed-capacity
// LRU cache (the BRAM/URAM budget) in front of a software Store (the host
// database reached over PCIe); reads miss to the host, writes go through
// to both, evictions are clean (the host always has the latest value).
//
// The paper argues the added host-access latency in tx_mvcc_commit stays
// hidden under the vscc stage; internal/hwsim models that latency and the
// Figure 12c experiment demonstrates the hiding.
type HybridKVS struct {
	mu       sync.Mutex
	capacity int
	cache    map[string]*list.Element
	order    *list.List // front = most recently used
	host     *Store

	hits       int
	misses     int
	evictions  int
	hostReads  int
	hostWrites int
}

type hybridEntry struct {
	key string
	val VersionedValue
}

// NewHybridKVS creates a hybrid database with the given in-hardware entry
// capacity backed by host.
func NewHybridKVS(capacity int, host *Store) *HybridKVS {
	if capacity < 1 {
		capacity = 1
	}
	return &HybridKVS{
		capacity: capacity,
		cache:    make(map[string]*list.Element, capacity),
		order:    list.New(),
		host:     host,
	}
}

// Read returns the versioned value for key, consulting the hardware cache
// first and the host store on a miss (promoting the entry).
func (h *HybridKVS) Read(key string) (VersionedValue, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.cache[key]; ok {
		h.hits++
		h.order.MoveToFront(el)
		return el.Value.(*hybridEntry).val, true
	}
	h.misses++
	h.hostReads++
	v, err := h.host.Get(key)
	if err != nil {
		return VersionedValue{}, false
	}
	h.insertLocked(key, v)
	return v, true
}

// Version returns the current version of key.
func (h *HybridKVS) Version(key string) (block.Version, bool) {
	v, ok := h.Read(key)
	return v.Version, ok
}

// Write stores value in both the cache and the host store. Unlike the pure
// HardwareKVS, a hybrid database never rejects for capacity: it evicts.
func (h *HybridKVS) Write(key string, value []byte, ver block.Version) error {
	val := make([]byte, len(value))
	copy(val, value)
	vv := VersionedValue{Value: val, Version: ver}

	h.mu.Lock()
	if el, ok := h.cache[key]; ok {
		el.Value.(*hybridEntry).val = vv
		h.order.MoveToFront(el)
	} else {
		h.insertLocked(key, vv)
	}
	h.hostWrites++
	h.mu.Unlock()

	h.host.Put(key, value, ver)
	return nil
}

// insertLocked adds an entry, evicting the LRU entry when full.
func (h *HybridKVS) insertLocked(key string, vv VersionedValue) {
	if len(h.cache) >= h.capacity {
		back := h.order.Back()
		if back != nil {
			h.order.Remove(back)
			delete(h.cache, back.Value.(*hybridEntry).key)
			h.evictions++
		}
	}
	h.cache[key] = h.order.PushFront(&hybridEntry{key: key, val: vv})
}

// CacheLen reports the number of entries resident in hardware.
func (h *HybridKVS) CacheLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.cache)
}

// Stats reports cache behaviour.
func (h *HybridKVS) Stats() (hits, misses, evictions, hostReads, hostWrites int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits, h.misses, h.evictions, h.hostReads, h.hostWrites
}

// Snapshot returns the authoritative (host) contents.
func (h *HybridKVS) Snapshot() map[string]VersionedValue {
	return h.host.Snapshot()
}
