package statedb

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"bmac/internal/block"
)

// HybridKVS implements the paper's §5 database-scaling proposal: "use the
// in-hardware database for a small amount of actively accessed data, while
// keeping a persistent database on the host CPU". It is a fixed-capacity
// LRU cache (the BRAM/URAM budget) in front of a software Store (the host
// database reached over PCIe); reads miss to the host, writes go through
// to both, evictions are clean (the host always has the latest value).
//
// The paper argues the added host-access latency in tx_mvcc_commit stays
// hidden under the vscc stage (Figure 12c); SetHostReadLatency models that
// PCIe/host round trip so the pipeline's prefetch stage can demonstrate the
// hiding in software: warm-up reads absorb the misses while vscc runs.
type HybridKVS struct {
	mu       sync.Mutex
	capacity int
	cache    map[string]*list.Element // guarded by mu
	order    *list.List               // guarded by mu; front = most recently used
	host     *Store

	// hostLatency is the modeled one-way-plus-return host access cost paid
	// by a cache-miss read. It is served OUTSIDE the mutex so concurrent
	// misses (and prefetch warm-ups) overlap, like independent PCIe reads.
	hostLatency time.Duration

	hits       int
	misses     int
	evictions  int
	hostReads  int
	hostWrites int
}

type hybridEntry struct {
	key string
	val VersionedValue
}

// NewHybridKVS creates a hybrid database with the given in-hardware entry
// capacity backed by host.
func NewHybridKVS(capacity int, host *Store) *HybridKVS {
	if capacity < 1 {
		capacity = 1
	}
	return &HybridKVS{
		capacity: capacity,
		cache:    make(map[string]*list.Element, capacity),
		order:    list.New(),
		host:     host,
	}
}

// SetHostReadLatency sets the modeled host-access latency paid by each
// cache-miss read (0 disables the model). Call before sharing the store
// across goroutines.
func (h *HybridKVS) SetHostReadLatency(d time.Duration) { h.hostLatency = d }

// Capacity returns the configured in-hardware entry capacity.
func (h *HybridKVS) Capacity() int { return h.capacity }

// SetCountAccesses is a no-op: the hybrid database's hit/miss/host counters
// double as its cache telemetry and are maintained under a mutex it already
// holds, so disabling them would save nothing.
func (h *HybridKVS) SetCountAccesses(bool) {}

// Host returns the backing host store.
func (h *HybridKVS) Host() *Store { return h.host }

// Read returns the versioned value for key, consulting the hardware cache
// first and the host store on a miss (promoting the entry).
func (h *HybridKVS) Read(key string) (VersionedValue, bool) {
	h.mu.Lock()
	if el, ok := h.cache[key]; ok {
		h.hits++
		h.order.MoveToFront(el)
		v := el.Value.(*hybridEntry).val
		h.mu.Unlock()
		return v, true
	}
	h.misses++
	h.mu.Unlock()

	// Pay the modeled host round trip outside the mutex so concurrent
	// misses — in particular the prefetch stage's warm-up reads — overlap.
	if h.hostLatency > 0 {
		time.Sleep(h.hostLatency)
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	// Re-check under the lock: a concurrent miss may have promoted the key
	// already, or a writer committed a newer value while we were away. A
	// promoted key is served from the cache without touching the host, so
	// hostReads counts only actual host accesses.
	if el, ok := h.cache[key]; ok {
		h.order.MoveToFront(el)
		return el.Value.(*hybridEntry).val, true
	}
	// The host read itself happens under the mutex: Write updates cache and
	// host atomically with respect to it, so the promoted value can never be
	// older than what the cache was told.
	h.hostReads++
	v, err := h.host.Get(key)
	if err != nil {
		return VersionedValue{}, false
	}
	h.insertLocked(key, v)
	return v, true
}

// Get is Read with Store-compatible error reporting.
func (h *HybridKVS) Get(key string) (VersionedValue, error) {
	v, ok := h.Read(key)
	if !ok {
		return VersionedValue{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

// Version returns the current version of key.
func (h *HybridKVS) Version(key string) (block.Version, bool) {
	v, ok := h.Read(key)
	return v.Version, ok
}

// Write stores value in both the cache and the host store. Unlike the pure
// HardwareKVS, a hybrid database never rejects for capacity: it evicts.
//
// The write-through happens while the mutex is held: if it did not, two
// concurrent writers could update the cache in one order and the host in
// the other, and after a clean eviction a read would resurrect the stale
// host value. The value is defensively copied before either side sees it.
func (h *HybridKVS) Write(key string, value []byte, ver block.Version) error {
	val := make([]byte, len(value))
	copy(val, value)
	vv := VersionedValue{Value: val, Version: ver}

	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.cache[key]; ok {
		el.Value.(*hybridEntry).val = vv
		h.order.MoveToFront(el)
	} else {
		h.insertLocked(key, vv)
	}
	h.hostWrites++
	h.host.Put(key, val, ver)
	return nil
}

// Put implements KVS (Write never fails).
func (h *HybridKVS) Put(key string, value []byte, ver block.Version) {
	_ = h.Write(key, value, ver) // bmaclint:allow errdiscard (write-through to the memory tier never fails)
}

// WriteBatch applies a write set with the given version.
func (h *HybridKVS) WriteBatch(writes []block.KVWrite, ver block.Version) {
	for _, w := range writes {
		_ = h.Write(w.Key, w.Value, ver) // bmaclint:allow errdiscard (write-through to the memory tier never fails)
	}
}

// MVCCCheck re-reads each read-set key and compares versions.
func (h *HybridKVS) MVCCCheck(reads []block.KVRead) error {
	return CheckMVCC(h.Version, reads)
}

// insertLocked adds an entry, evicting the LRU entry when full.
func (h *HybridKVS) insertLocked(key string, vv VersionedValue) {
	if len(h.cache) >= h.capacity {
		back := h.order.Back()
		if back != nil {
			h.order.Remove(back)
			delete(h.cache, back.Value.(*hybridEntry).key)
			h.evictions++
		}
	}
	h.cache[key] = h.order.PushFront(&hybridEntry{key: key, val: vv})
}

// CacheLen reports the number of entries resident in hardware.
func (h *HybridKVS) CacheLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.cache)
}

// Len reports the number of keys in the authoritative (host) database.
func (h *HybridKVS) Len() int { return h.host.Len() }

// AccessCounts reports cumulative reads (cache hits + misses) and writes.
func (h *HybridKVS) AccessCounts() (reads, writes int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits + h.misses, h.hostWrites
}

// Stats reports cache behaviour.
func (h *HybridKVS) Stats() (hits, misses, evictions, hostReads, hostWrites int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits, h.misses, h.evictions, h.hostReads, h.hostWrites
}

// HitRate reports the fraction of reads served from the hardware cache.
func (h *HybridKVS) HitRate() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hits+h.misses == 0 {
		return 0
	}
	return float64(h.hits) / float64(h.hits+h.misses)
}

// Snapshot returns the authoritative (host) contents.
func (h *HybridKVS) Snapshot() map[string]VersionedValue {
	return h.host.Snapshot()
}
