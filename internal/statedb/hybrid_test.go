package statedb

import (
	"fmt"
	"testing"
	"testing/quick"

	"bmac/internal/block"
)

func TestHybridReadThroughAndPromotion(t *testing.T) {
	host := NewStore()
	host.Put("k", []byte("v"), block.Version{BlockNum: 2})
	h := NewHybridKVS(4, host)

	v, ok := h.Read("k") // miss -> host
	if !ok || string(v.Value) != "v" {
		t.Fatalf("read = %+v, %v", v, ok)
	}
	if _, ok := h.Read("k"); !ok { // now a hit
		t.Fatal("promoted entry missing")
	}
	hits, misses, _, hostReads, _ := h.Stats()
	if hits != 1 || misses != 1 || hostReads != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, hostReads)
	}
}

func TestHybridEviction(t *testing.T) {
	host := NewStore()
	h := NewHybridKVS(2, host)
	for i := 0; i < 5; i++ {
		if err := h.Write(fmt.Sprintf("k%d", i), []byte{byte(i)}, block.Version{BlockNum: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.CacheLen() != 2 {
		t.Errorf("cache len = %d, want 2", h.CacheLen())
	}
	_, _, evictions, _, _ := h.Stats()
	if evictions != 3 {
		t.Errorf("evictions = %d, want 3", evictions)
	}
	// Evicted keys are still readable (from the host), with correct versions.
	for i := 0; i < 5; i++ {
		v, ok := h.Read(fmt.Sprintf("k%d", i))
		if !ok || v.Version.BlockNum != uint64(i) {
			t.Errorf("k%d after eviction: %+v, %v", i, v, ok)
		}
	}
}

func TestHybridLRUOrder(t *testing.T) {
	h := NewHybridKVS(2, NewStore())
	h.Write("a", []byte("1"), block.Version{})
	h.Write("b", []byte("2"), block.Version{})
	h.Read("a")                                // a becomes MRU
	h.Write("c", []byte("3"), block.Version{}) // evicts b
	if h.CacheLen() != 2 {
		t.Fatalf("cache len = %d", h.CacheLen())
	}
	hits0, _, _, hostReads0, _ := h.Stats()
	h.Read("a") // should still be cached
	hits1, _, _, hostReads1, _ := h.Stats()
	if hits1 != hits0+1 || hostReads1 != hostReads0 {
		t.Error("a was evicted despite being MRU")
	}
}

func TestHybridNeverRejects(t *testing.T) {
	h := NewHybridKVS(1, NewStore())
	for i := 0; i < 100; i++ {
		if err := h.Write(fmt.Sprintf("k%d", i), []byte("v"), block.Version{}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// TestHybridMatchesStore property-checks that a HybridKVS (any capacity)
// and a plain Store agree on every read after the same write sequence —
// the §5 requirement that spilling to the host is transparent to mvcc.
func TestHybridMatchesStore(t *testing.T) {
	type op struct {
		Key  uint8
		Val  uint8
		Read bool
	}
	f := func(capRaw uint8, ops []op) bool {
		capacity := int(capRaw%8) + 1
		ref := NewStore()
		h := NewHybridKVS(capacity, NewStore())
		for i, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%32)
			if o.Read {
				rv, refErr := ref.Get(key)
				hv, hok := h.Read(key)
				refOk := refErr == nil
				if refOk != hok {
					return false
				}
				if refOk && (string(rv.Value) != string(hv.Value) || rv.Version != hv.Version) {
					return false
				}
				continue
			}
			ver := block.Version{BlockNum: uint64(i)}
			ref.Put(key, []byte{o.Val}, ver)
			if err := h.Write(key, []byte{o.Val}, ver); err != nil {
				return false
			}
		}
		return SnapshotsEqual(ref.Snapshot(), h.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHybridReadHit(b *testing.B) {
	h := NewHybridKVS(1024, NewStore())
	for i := 0; i < 512; i++ {
		h.Write(fmt.Sprintf("k%d", i), []byte("v"), block.Version{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(fmt.Sprintf("k%d", i%512))
	}
}

func BenchmarkHybridReadMiss(b *testing.B) {
	host := NewStore()
	for i := 0; i < 1<<16; i++ {
		host.Put(fmt.Sprintf("k%d", i), []byte("v"), block.Version{})
	}
	h := NewHybridKVS(16, host)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(fmt.Sprintf("k%d", i%(1<<16)))
	}
}
