package statedb

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bmac/internal/block"
)

func TestHybridReadThroughAndPromotion(t *testing.T) {
	host := NewStore()
	host.Put("k", []byte("v"), block.Version{BlockNum: 2})
	h := NewHybridKVS(4, host)

	v, ok := h.Read("k") // miss -> host
	if !ok || string(v.Value) != "v" {
		t.Fatalf("read = %+v, %v", v, ok)
	}
	if _, ok := h.Read("k"); !ok { // now a hit
		t.Fatal("promoted entry missing")
	}
	hits, misses, _, hostReads, _ := h.Stats()
	if hits != 1 || misses != 1 || hostReads != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, hostReads)
	}
}

func TestHybridEviction(t *testing.T) {
	host := NewStore()
	h := NewHybridKVS(2, host)
	for i := 0; i < 5; i++ {
		if err := h.Write(fmt.Sprintf("k%d", i), []byte{byte(i)}, block.Version{BlockNum: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.CacheLen() != 2 {
		t.Errorf("cache len = %d, want 2", h.CacheLen())
	}
	_, _, evictions, _, _ := h.Stats()
	if evictions != 3 {
		t.Errorf("evictions = %d, want 3", evictions)
	}
	// Evicted keys are still readable (from the host), with correct versions.
	for i := 0; i < 5; i++ {
		v, ok := h.Read(fmt.Sprintf("k%d", i))
		if !ok || v.Version.BlockNum != uint64(i) {
			t.Errorf("k%d after eviction: %+v, %v", i, v, ok)
		}
	}
}

func TestHybridLRUOrder(t *testing.T) {
	h := NewHybridKVS(2, NewStore())
	h.Write("a", []byte("1"), block.Version{})
	h.Write("b", []byte("2"), block.Version{})
	h.Read("a")                                // a becomes MRU
	h.Write("c", []byte("3"), block.Version{}) // evicts b
	if h.CacheLen() != 2 {
		t.Fatalf("cache len = %d", h.CacheLen())
	}
	hits0, _, _, hostReads0, _ := h.Stats()
	h.Read("a") // should still be cached
	hits1, _, _, hostReads1, _ := h.Stats()
	if hits1 != hits0+1 || hostReads1 != hostReads0 {
		t.Error("a was evicted despite being MRU")
	}
}

func TestHybridNeverRejects(t *testing.T) {
	h := NewHybridKVS(1, NewStore())
	for i := 0; i < 100; i++ {
		if err := h.Write(fmt.Sprintf("k%d", i), []byte("v"), block.Version{}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// TestHybridMatchesStore property-checks that a HybridKVS (any capacity)
// and a plain Store agree on every read after the same write sequence —
// the §5 requirement that spilling to the host is transparent to mvcc.
func TestHybridMatchesStore(t *testing.T) {
	type op struct {
		Key  uint8
		Val  uint8
		Read bool
	}
	f := func(capRaw uint8, ops []op) bool {
		capacity := int(capRaw%8) + 1
		ref := NewStore()
		h := NewHybridKVS(capacity, NewStore())
		for i, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%32)
			if o.Read {
				rv, refErr := ref.Get(key)
				hv, hok := h.Read(key)
				refOk := refErr == nil
				if refOk != hok {
					return false
				}
				if refOk && (string(rv.Value) != string(hv.Value) || rv.Version != hv.Version) {
					return false
				}
				continue
			}
			ver := block.Version{BlockNum: uint64(i)}
			ref.Put(key, []byte{o.Val}, ver)
			if err := h.Write(key, []byte{o.Val}, ver); err != nil {
				return false
			}
		}
		return SnapshotsEqual(ref.Snapshot(), h.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// cachedValue peeks at the hardware cache without touching the host or the
// LRU order (test-only).
func (h *HybridKVS) cachedValue(key string) (VersionedValue, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.cache[key]
	if !ok {
		return VersionedValue{}, false
	}
	return el.Value.(*hybridEntry).val, true
}

// TestHybridConcurrentWriteThrough runs concurrent writers (and readers)
// over a tiny cache and checks the write-through invariant: whatever value
// the hardware cache holds for a key, the host holds the same one — so a
// clean eviction can never resurrect stale state. Before the fix the host
// write happened outside the mutex, letting two writers reach the host in
// reverse order. Run with -race.
func TestHybridConcurrentWriteThrough(t *testing.T) {
	for round := 0; round < 20; round++ {
		host := NewStore()
		h := NewHybridKVS(2, host)
		const writers, iters, keys = 8, 50, 4
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					key := fmt.Sprintf("k%d", (w+i)%keys)
					val := []byte(fmt.Sprintf("w%d/i%d", w, i))
					if err := h.Write(key, val, block.Version{BlockNum: uint64(w), TxNum: uint64(i)}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					val[0] = 'X' // callers may reuse buffers: value must be copied
					h.Read(key)  // interleave miss-path promotions
				}
			}(w)
		}
		wg.Wait()
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("k%d", k)
			hostV, err := host.Get(key)
			if err != nil {
				t.Fatalf("round %d: host missing %s: %v", round, key, err)
			}
			if hostV.Value[0] == 'X' {
				t.Fatalf("round %d: host saw caller's buffer mutation on %s", round, key)
			}
			if cached, ok := h.cachedValue(key); ok {
				if string(cached.Value) != string(hostV.Value) || cached.Version != hostV.Version {
					t.Fatalf("round %d: cache/host diverged on %s: cache=%q@%v host=%q@%v",
						round, key, cached.Value, cached.Version, hostV.Value, hostV.Version)
				}
			}
		}
	}
}

// TestHybridDefensiveCopyOnWrite pins the simple (single-writer) half of
// the satellite fix: the host must never alias the caller's slice.
func TestHybridDefensiveCopyOnWrite(t *testing.T) {
	host := NewStore()
	h := NewHybridKVS(1, host)
	buf := []byte("fresh")
	if err := h.Write("k", buf, block.Version{BlockNum: 1}); err != nil {
		t.Fatal(err)
	}
	copy(buf, "STALE")
	hostV, err := host.Get("k")
	if err != nil || string(hostV.Value) != "fresh" {
		t.Fatalf("host value = %q, %v (want \"fresh\")", hostV.Value, err)
	}
	if v, ok := h.Read("k"); !ok || string(v.Value) != "fresh" {
		t.Fatalf("cache value = %q, %v", v.Value, ok)
	}
}

// TestHybridHostReadLatency checks that only cache misses pay the modeled
// host latency, and that concurrent misses overlap rather than serialize.
func TestHybridHostReadLatency(t *testing.T) {
	host := NewStore()
	for i := 0; i < 32; i++ {
		host.Put(fmt.Sprintf("k%d", i), []byte("v"), block.Version{})
	}
	h := NewHybridKVS(32, host)
	const lat = 2 * time.Millisecond
	h.SetHostReadLatency(lat)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ok := h.Read(fmt.Sprintf("k%d", i)); !ok {
				t.Errorf("k%d missing", i)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 16*lat {
		t.Errorf("32 concurrent misses took %v; they must overlap, not serialize (32x%v)", el, lat)
	}

	start = time.Now()
	for i := 0; i < 32; i++ {
		h.Read(fmt.Sprintf("k%d", i)) // all hits now
	}
	if el := time.Since(start); el > lat {
		t.Errorf("cache hits paid host latency: %v", el)
	}
}

func BenchmarkHybridReadHit(b *testing.B) {
	h := NewHybridKVS(1024, NewStore())
	for i := 0; i < 512; i++ {
		h.Write(fmt.Sprintf("k%d", i), []byte("v"), block.Version{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(fmt.Sprintf("k%d", i%512))
	}
}

func BenchmarkHybridReadMiss(b *testing.B) {
	host := NewStore()
	for i := 0; i < 1<<16; i++ {
		host.Put(fmt.Sprintf("k%d", i), []byte("v"), block.Version{})
	}
	h := NewHybridKVS(16, host)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Read(fmt.Sprintf("k%d", i%(1<<16)))
	}
}
