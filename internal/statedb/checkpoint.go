package statedb

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bmac/internal/block"
)

// Checkpoint file layout (all integers big-endian):
//
//	magic   [8]byte  "BMACCKP1"
//	height  uint64   blocks [0, height) are reflected in the state
//	count   uint64   number of entries
//	entry*  keyLen uint32, key, valLen uint32, value, verBlock uint64, verTx uint64
//	sum     [32]byte sha256 of everything above
//
// The trailer checksum turns any torn or bit-rotted checkpoint into a clean
// load error instead of silently corrupt state; writers publish via
// write-to-temp + fsync + atomic rename, so a crash mid-save leaves the
// previous checkpoint intact.
var ckptMagic = [8]byte{'B', 'M', 'A', 'C', 'C', 'K', 'P', '1'}

// ErrCorruptCheckpoint reports a checkpoint file that failed structural or
// checksum validation.
var ErrCorruptCheckpoint = errors.New("statedb: corrupt checkpoint")

// SaveCheckpoint atomically serializes the database snapshot plus the state
// height (number of blocks applied) to path. The write goes to a temporary
// file in the same directory, is fsynced, and is renamed over path; the
// directory is fsynced afterwards so the rename itself is durable.
func SaveCheckpoint(path string, kvs KVS, height uint64) error {
	return SaveSnapshot(path, kvs.Snapshot(), height)
}

// SaveCheckpointFault is SaveCheckpoint with a pre-write fault hook — the
// chaos slow-disk injection point. The hook runs before the temp file is
// created; a returned error models a transient device fault and is
// retried a bounded number of times before surfacing. Because the write
// is temp+rename-atomic anyway, a surfaced fault leaves the previous
// checkpoint intact.
func SaveCheckpointFault(path string, kvs KVS, height uint64, fault func() error) error {
	if fault != nil {
		const maxFaultRetries = 8
		var err error
		for attempt := 0; ; attempt++ {
			if err = fault(); err == nil {
				break
			}
			if attempt >= maxFaultRetries {
				return fmt.Errorf("statedb: checkpoint fault persisted after %d retries: %w", maxFaultRetries, err)
			}
		}
	}
	return SaveCheckpoint(path, kvs, height)
}

// SaveSnapshot is SaveCheckpoint over an already-taken snapshot (so callers
// can capture state at a precise block boundary and write it out later).
func SaveSnapshot(path string, snap map[string]VersionedValue, height uint64) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("statedb: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds

	sum := sha256.New()
	w := bufio.NewWriterSize(io.MultiWriter(tmp, sum), 1<<16)

	if _, err := w.Write(ckptMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	var u64 [8]byte
	writeU64 := func(v uint64) error {
		binary.BigEndian.PutUint64(u64[:], v)
		_, err := w.Write(u64[:])
		return err
	}
	var u32 [4]byte
	writeBytes := func(b []byte) error {
		binary.BigEndian.PutUint32(u32[:], uint32(len(b)))
		if _, err := w.Write(u32[:]); err != nil {
			return err
		}
		_, err := w.Write(b)
		return err
	}
	// Deterministic order: the same state always produces the same file, so
	// checkpoint bytes (and their hashes) are comparable across peers.
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	werr := writeU64(height)
	if werr == nil {
		werr = writeU64(uint64(len(keys)))
	}
	for _, k := range keys {
		if werr != nil {
			break
		}
		v := snap[k]
		if werr = writeBytes([]byte(k)); werr == nil {
			if werr = writeBytes(v.Value); werr == nil {
				if werr = writeU64(v.Version.BlockNum); werr == nil {
					werr = writeU64(v.Version.TxNum)
				}
			}
		}
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr != nil {
		tmp.Close()
		return fmt.Errorf("statedb: checkpoint write: %w", werr)
	}
	if _, err := tmp.Write(sum.Sum(nil)); err != nil {
		tmp.Close()
		return fmt.Errorf("statedb: checkpoint sum: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("statedb: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("statedb: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// LoadCheckpoint reads and validates a checkpoint file, returning the state
// snapshot and the height it was taken at. A missing file reports an error
// wrapping os.ErrNotExist; any structural or checksum failure reports
// ErrCorruptCheckpoint.
func LoadCheckpoint(path string) (map[string]VersionedValue, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < len(ckptMagic)+16+sha256.Size {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrCorruptCheckpoint, len(raw))
	}
	body, tail := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], tail) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptCheckpoint)
	}
	if !bytes.Equal(body[:len(ckptMagic)], ckptMagic[:]) {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	r := body[len(ckptMagic):]
	readU64 := func() (uint64, bool) {
		if len(r) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(r[:8])
		r = r[8:]
		return v, true
	}
	readBytes := func() ([]byte, bool) {
		if len(r) < 4 {
			return nil, false
		}
		n := int(binary.BigEndian.Uint32(r[:4]))
		r = r[4:]
		if n < 0 || len(r) < n {
			return nil, false
		}
		b := r[:n]
		r = r[n:]
		return b, true
	}
	height, ok := readU64()
	if !ok {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorruptCheckpoint)
	}
	count, ok := readU64()
	if !ok {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrCorruptCheckpoint)
	}
	snap := make(map[string]VersionedValue, count)
	for i := uint64(0); i < count; i++ {
		key, ok := readBytes()
		if !ok {
			return nil, 0, fmt.Errorf("%w: truncated entry %d", ErrCorruptCheckpoint, i)
		}
		val, ok := readBytes()
		if !ok {
			return nil, 0, fmt.Errorf("%w: truncated entry %d", ErrCorruptCheckpoint, i)
		}
		vb, ok1 := readU64()
		vt, ok2 := readU64()
		if !ok1 || !ok2 {
			return nil, 0, fmt.Errorf("%w: truncated entry %d", ErrCorruptCheckpoint, i)
		}
		v := make([]byte, len(val))
		copy(v, val)
		snap[string(key)] = VersionedValue{Value: v, Version: block.Version{BlockNum: vb, TxNum: vt}}
	}
	if len(r) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrCorruptCheckpoint, len(r))
	}
	return snap, height, nil
}

// RestoreSnapshot loads a snapshot into an empty database. Works against
// every KVS backend (Put writes through the hybrid cache to its host store).
func RestoreSnapshot(kvs KVS, snap map[string]VersionedValue) {
	for k, v := range snap {
		kvs.Put(k, v.Value, v.Version)
	}
}

// SnapshotHash returns a deterministic digest of a state snapshot: keys in
// sorted order, each with its value and version. Two databases hold the
// same state iff their snapshot hashes are equal, which is how the cluster
// churn scenario proves a recovered peer converged.
func SnapshotHash(snap map[string]VersionedValue) []byte {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var u64 [8]byte
	var u32 [4]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint32(u32[:], uint32(len(b)))
		h.Write(u32[:])
		h.Write(b)
	}
	for _, k := range keys {
		v := snap[k]
		put([]byte(k))
		put(v.Value)
		binary.BigEndian.PutUint64(u64[:], v.Version.BlockNum)
		h.Write(u64[:])
		binary.BigEndian.PutUint64(u64[:], v.Version.TxNum)
		h.Write(u64[:])
	}
	return h.Sum(nil)
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("statedb: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("statedb: sync dir: %w", err)
	}
	return nil
}
