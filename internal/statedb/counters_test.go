package statedb

import (
	"testing"

	"bmac/internal/block"
)

// TestAccessCountersToggle pins the count_accesses gate on both counting
// backends: disabled counters freeze, re-enabled counters resume, and data
// operations are unaffected either way.
func TestAccessCountersToggle(t *testing.T) {
	backends := map[string]KVS{
		"store":   NewStore(),
		"sharded": NewShardedStore(4),
	}
	for name, kvs := range backends {
		t.Run(name, func(t *testing.T) {
			kvs.Put("a", []byte("1"), block.Version{BlockNum: 1})
			kvs.Get("a")
			r0, w0 := kvs.AccessCounts()
			if r0 == 0 || w0 == 0 {
				t.Fatalf("counting should default on: reads=%d writes=%d", r0, w0)
			}

			kvs.SetCountAccesses(false)
			kvs.Put("b", []byte("2"), block.Version{BlockNum: 2})
			kvs.Get("a")
			kvs.Get("b")
			kvs.Version("a")
			if r, w := kvs.AccessCounts(); r != r0 || w != w0 {
				t.Fatalf("counters moved while disabled: %d/%d -> %d/%d", r0, w0, r, w)
			}
			if _, err := kvs.Get("b"); err != nil {
				t.Fatalf("data path broken while counters off: %v", err)
			}

			kvs.SetCountAccesses(true)
			kvs.Get("a")
			if r, _ := kvs.AccessCounts(); r != r0+1 {
				t.Fatalf("counters did not resume: reads=%d want %d", r, r0+1)
			}
		})
	}
}
