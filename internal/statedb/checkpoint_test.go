package statedb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bmac/internal/block"
)

// backends returns one fresh instance of every KVS backend, keyed by name.
func backends() map[string]KVS {
	return map[string]KVS{
		"memory":  NewStore(),
		"sharded": NewShardedStore(4),
		"hybrid":  NewHybridKVS(8, NewStore()), // capacity < working set: eviction paths exercised
	}
}

func seedState(kvs KVS, n int) {
	for i := 0; i < n; i++ {
		kvs.Put(fmt.Sprintf("key%03d", i), []byte{byte(i), byte(i >> 8)},
			block.Version{BlockNum: uint64(i / 4), TxNum: uint64(i % 4)})
	}
}

// TestCheckpointRoundTrip saves and reloads a checkpoint through every
// backend, in every combination of source and destination: the restored
// snapshot hash must match the original regardless of which backend wrote
// it and which restores it.
func TestCheckpointRoundTrip(t *testing.T) {
	for srcName, src := range backends() {
		seedState(src, 20)
		path := filepath.Join(t.TempDir(), "checkpoint")
		if err := SaveCheckpoint(path, src, 5); err != nil {
			t.Fatalf("%s: save: %v", srcName, err)
		}
		snap, height, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("%s: load: %v", srcName, err)
		}
		if height != 5 {
			t.Errorf("%s: height = %d, want 5", srcName, height)
		}
		want := SnapshotHash(src.Snapshot())
		if got := SnapshotHash(snap); !bytes.Equal(got, want) {
			t.Errorf("%s: loaded snapshot hash diverges", srcName)
		}
		for dstName, dst := range backends() {
			RestoreSnapshot(dst, snap)
			if got := SnapshotHash(dst.Snapshot()); !bytes.Equal(got, want) {
				t.Errorf("%s -> %s: restored state hash diverges", srcName, dstName)
			}
			if dst.Len() != src.Len() {
				t.Errorf("%s -> %s: %d keys restored, want %d", srcName, dstName, dst.Len(), src.Len())
			}
		}
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	_, _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want os.ErrNotExist", err)
	}
}

// TestCheckpointDetectsCorruption flips and truncates bytes: every
// mutation must surface as ErrCorruptCheckpoint, never as silently wrong
// state.
func TestCheckpointDetectsCorruption(t *testing.T) {
	src := NewStore()
	seedState(src, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")
	if err := SaveCheckpoint(path, src, 3); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"flipped byte":    append(append([]byte{}, raw[:20]...), append([]byte{raw[20] ^ 0xff}, raw[21:]...)...),
		"truncated tail":  raw[:len(raw)-7],
		"truncated short": raw[:10],
		"bad magic":       append([]byte{'X'}, raw[1:]...),
	}
	for name, mutated := range cases {
		p := filepath.Join(dir, "bad")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadCheckpoint(p); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
}

// TestCheckpointAtomicReplace overwrites an existing checkpoint: the new
// save must fully replace the old one, and a deterministic state must
// produce byte-identical checkpoint files.
func TestCheckpointAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")
	s1 := NewStore()
	seedState(s1, 4)
	if err := SaveCheckpoint(path, s1, 1); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	seedState(s2, 8)
	if err := SaveCheckpoint(path, s2, 2); err != nil {
		t.Fatal(err)
	}
	snap, height, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if height != 2 || len(snap) != 8 {
		t.Errorf("height=%d len=%d after replace, want 2/8", height, len(snap))
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d directory entries after two saves, want 1", len(entries))
	}
	// Determinism: same state, same bytes.
	p2 := filepath.Join(dir, "again")
	if err := SaveCheckpoint(p2, s2, 2); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(p2)
	if !bytes.Equal(a, b) {
		t.Error("checkpoints of identical state differ byte-wise")
	}
}

func TestSnapshotHashSensitivity(t *testing.T) {
	a := NewStore()
	seedState(a, 6)
	base := SnapshotHash(a.Snapshot())

	b := NewStore()
	seedState(b, 6)
	if !bytes.Equal(base, SnapshotHash(b.Snapshot())) {
		t.Error("identical states hash differently")
	}
	b.Put("key000", []byte{0xff}, block.Version{})
	if bytes.Equal(base, SnapshotHash(b.Snapshot())) {
		t.Error("changed value not reflected in hash")
	}
	c := NewStore()
	seedState(c, 6)
	c.Put("key000", []byte{0, 0}, block.Version{BlockNum: 9, TxNum: 9})
	if bytes.Equal(base, SnapshotHash(c.Snapshot())) {
		t.Error("changed version not reflected in hash")
	}
}
