package statedb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"bmac/internal/block"
)

func TestStoreGetPut(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	s.Put("k", []byte("v"), block.Version{BlockNum: 1, TxNum: 2})
	v, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "v" || v.Version != (block.Version{BlockNum: 1, TxNum: 2}) {
		t.Errorf("got %+v", v)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestStoreWriteBatchAtomicVersion(t *testing.T) {
	s := NewStore()
	ver := block.Version{BlockNum: 5, TxNum: 0}
	s.WriteBatch([]block.KVWrite{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: []byte("2")},
	}, ver)
	for _, k := range []string{"a", "b"} {
		got, ok := s.Version(k)
		if !ok || got != ver {
			t.Errorf("version(%q) = %v, %v", k, got, ok)
		}
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore()
	val := []byte("mutable")
	s.Put("k", val, block.Version{})
	val[0] = 'X'
	got, _ := s.Get("k")
	if string(got.Value) != "mutable" {
		t.Error("store aliased caller's slice")
	}
}

func TestMVCCCheck(t *testing.T) {
	s := NewStore()
	s.Put("acct", []byte("100"), block.Version{BlockNum: 4, TxNum: 2})

	// Matching version: no conflict.
	if err := s.MVCCCheck([]block.KVRead{{Key: "acct", Version: block.Version{BlockNum: 4, TxNum: 2}}}); err != nil {
		t.Errorf("matching version: %v", err)
	}
	// Stale version: conflict.
	if err := s.MVCCCheck([]block.KVRead{{Key: "acct", Version: block.Version{BlockNum: 3, TxNum: 0}}}); err == nil {
		t.Error("stale read version must conflict")
	}
	// Absent key read as absent: no conflict.
	if err := s.MVCCCheck([]block.KVRead{{Key: "nope", Version: block.Version{}}}); err != nil {
		t.Errorf("absent key, zero version: %v", err)
	}
	// Absent key but endorsement saw a version: conflict.
	if err := s.MVCCCheck([]block.KVRead{{Key: "nope", Version: block.Version{BlockNum: 1}}}); err == nil {
		t.Error("deleted key must conflict")
	}
}

func TestStoreConcurrentReaders(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, block.Version{BlockNum: uint64(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.Get(fmt.Sprintf("k%d", i)); err != nil {
					t.Errorf("get k%d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestHardwareKVSCapacity(t *testing.T) {
	h := NewHardwareKVS(2)
	if err := h.Write("a", []byte("1"), block.Version{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Write("b", []byte("2"), block.Version{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Write("c", []byte("3"), block.Version{}); !errors.Is(err, ErrFull) {
		t.Errorf("err = %v, want ErrFull", err)
	}
	// Overwriting an existing key is always allowed.
	if err := h.Write("a", []byte("9"), block.Version{BlockNum: 1}); err != nil {
		t.Errorf("overwrite: %v", err)
	}
	if h.Len() != 2 {
		t.Errorf("len = %d", h.Len())
	}
}

func TestHardwareKVSReadWrite(t *testing.T) {
	h := NewHardwareKVS(8192)
	if _, ok := h.Read("k"); ok {
		t.Error("read of absent key reported ok")
	}
	ver := block.Version{BlockNum: 9, TxNum: 3}
	if err := h.Write("k", []byte("val"), ver); err != nil {
		t.Fatal(err)
	}
	v, ok := h.Read("k")
	if !ok || string(v.Value) != "val" || v.Version != ver {
		t.Errorf("read = %+v, %v", v, ok)
	}
	gotVer, ok := h.Version("k")
	if !ok || gotVer != ver {
		t.Errorf("version = %v", gotVer)
	}
}

func TestHardwareKVSConcurrentAccess(t *testing.T) {
	h := NewHardwareKVS(8192)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%20)
				if g%2 == 0 {
					if err := h.Write(key, []byte{byte(i)}, block.Version{BlockNum: uint64(i)}); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					h.Read(key)
				}
			}
		}(g)
	}
	wg.Wait()
	reads, writes := h.AccessCounts()
	if reads == 0 || writes == 0 {
		t.Errorf("counts = %d/%d", reads, writes)
	}
}

func TestSnapshotsEqual(t *testing.T) {
	s := NewStore()
	h := NewHardwareKVS(100)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		ver := block.Version{BlockNum: uint64(i)}
		s.Put(k, []byte{byte(i)}, ver)
		if err := h.Write(k, []byte{byte(i)}, ver); err != nil {
			t.Fatal(err)
		}
	}
	if !SnapshotsEqual(s.Snapshot(), h.Snapshot()) {
		t.Error("identical commit sequences produced different snapshots")
	}
	s.Put("extra", []byte("x"), block.Version{})
	if SnapshotsEqual(s.Snapshot(), h.Snapshot()) {
		t.Error("different snapshots reported equal")
	}
}

// TestStoreHardwareEquivalence property-checks that the software Store and
// the HardwareKVS agree after any same sequence of writes.
func TestStoreHardwareEquivalence(t *testing.T) {
	type op struct {
		Key byte
		Val byte
	}
	f := func(ops []op) bool {
		s := NewStore()
		h := NewHardwareKVS(1 << 16)
		for i, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			ver := block.Version{BlockNum: uint64(i)}
			s.Put(key, []byte{o.Val}, ver)
			if err := h.Write(key, []byte{o.Val}, ver); err != nil {
				return false
			}
		}
		return SnapshotsEqual(s.Snapshot(), h.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore()
	for i := 0; i < 8192; i++ {
		s.Put(fmt.Sprintf("key%d", i), []byte("value"), block.Version{BlockNum: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key%d", i%8192)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHardwareKVSReadWrite(b *testing.B) {
	h := NewHardwareKVS(8192)
	for i := 0; i < 4096; i++ {
		if err := h.Write(fmt.Sprintf("key%d", i), []byte("value"), block.Version{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key%d", i%4096)
		h.Read(key)
		if err := h.Write(key, []byte("value2"), block.Version{BlockNum: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
