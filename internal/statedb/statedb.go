// Package statedb implements the versioned key-value state databases used by
// the validator peers.
//
// The software backends all satisfy the KVS interface (see kvs.go), so the
// commit engines are backend-agnostic:
//
//   - Store: a LevelDB-like software state database (in-memory with batched
//     writes and per-store locking), used by the software validator peer.
//     Reads can proceed in parallel, writes are applied in batches after the
//     mvcc check, matching Fabric's commit path.
//
//   - ShardedStore: Store semantics across N lock-striped shards, removing
//     the single-mutex bottleneck under the parallel commit engine.
//
//   - HybridKVS: the paper's §5 scaling proposal — a small fixed-capacity
//     LRU (the BRAM/URAM budget) in front of a host Store, with an optional
//     modeled host-access latency on misses.
//
//   - HardwareKVS: the fixed-capacity in-hardware key-value store of the
//     BMac block processor (BRAM/URAM backed, 8192 entries in the paper's
//     configuration). It supports read and write with versioned values and
//     an internal per-key locking discipline that disallows reading a key
//     while it is being written. It is deliberately NOT a KVS: the hybrid
//     database is how §5 scales past its capacity.
//
// Values carry a Version (block number, transaction number) so mvcc can
// compare the version observed at endorsement time with the current one.
package statedb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bmac/internal/block"
)

var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("statedb: key not found")
	// ErrFull reports an insert into a full hardware KVS.
	ErrFull = errors.New("statedb: hardware kvs is full")
)

// VersionedValue is a value plus the version of the transaction that wrote it.
type VersionedValue struct {
	Value   []byte
	Version block.Version
}

// Store is the software state database. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu   sync.RWMutex
	data map[string]VersionedValue // guarded by mu

	// Access counters are atomic: reads increment them while holding only
	// the read lock, and the parallel commit engine issues concurrent
	// version lookups. The count gate makes them zero-cost when disabled
	// (one predictable branch instead of a contended cache-line bump on
	// every Get in a load run).
	count  atomic.Bool
	reads  atomic.Int64
	writes atomic.Int64
}

// NewStore creates an empty software state database (access counting on).
func NewStore() *Store {
	s := &Store{data: make(map[string]VersionedValue)}
	s.count.Store(true)
	return s
}

// SetCountAccesses enables or disables the read/write access counters
// (enabled by default). Disabled counters cost one predicted branch per
// access — the hot-path configuration for load runs that never read them.
func (s *Store) SetCountAccesses(on bool) { s.count.Store(on) }

// Get returns the versioned value for key.
func (s *Store) Get(key string) (VersionedValue, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.count.Load() {
		s.reads.Add(1)
	}
	v, ok := s.data[key]
	if !ok {
		return VersionedValue{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

// Version returns the current version of key. A missing key reports the
// zero version and ok=false: Fabric treats reads of absent keys as version
// (0,0), and an endorsement read of an absent key matches that.
func (s *Store) Version(key string) (block.Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.count.Load() {
		s.reads.Add(1)
	}
	v, ok := s.data[key]
	return v.Version, ok
}

// WriteBatch applies a set of writes atomically with the given version.
func (s *Store) WriteBatch(writes []block.KVWrite, ver block.Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	count := s.count.Load()
	for _, w := range writes {
		val := make([]byte, len(w.Value))
		copy(val, w.Value)
		s.data[w.Key] = VersionedValue{Value: val, Version: ver}
		if count {
			s.writes.Add(1)
		}
	}
}

// Put inserts a single value (test/bootstrap helper).
func (s *Store) Put(key string, value []byte, ver block.Version) {
	s.WriteBatch([]block.KVWrite{{Key: key, Value: value}}, ver)
}

// Len reports the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// AccessCounts reports cumulative reads and writes (experiment metrics).
func (s *Store) AccessCounts() (reads, writes int) {
	return int(s.reads.Load()), int(s.writes.Load())
}

// MVCCCheck re-reads each read-set key and compares versions, returning nil
// when all match (the transaction is serializable) — step 3 of validation.
func (s *Store) MVCCCheck(reads []block.KVRead) error {
	return CheckMVCC(s.Version, reads)
}

// Snapshot returns a copy of the full database (for cross-validation of the
// software and hardware commit paths in tests).
func (s *Store) Snapshot() map[string]VersionedValue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]VersionedValue, len(s.data))
	for k, v := range s.data {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		out[k] = VersionedValue{Value: val, Version: v.Version}
	}
	return out
}

// HardwareKVS is the in-hardware state database: a fixed number of entries
// (bounded by BRAM/URAM), versioned values, and a locking mechanism that
// disallows reading a key currently being written (paper §3.3).
type HardwareKVS struct {
	mu       sync.Mutex
	capacity int
	data     map[string]VersionedValue // guarded by mu
	locked   map[string]bool           // guarded by mu
	reads    int                       // guarded by mu
	writes   int                       // guarded by mu
	lockWait int                       // guarded by mu; times a read had to wait on a locked key
}

// NewHardwareKVS creates a hardware KVS with the given entry capacity
// (8192 in the paper's configuration).
func NewHardwareKVS(capacity int) *HardwareKVS {
	return &HardwareKVS{
		capacity: capacity,
		data:     make(map[string]VersionedValue, capacity),
		locked:   make(map[string]bool),
	}
}

// Capacity returns the configured entry capacity.
func (h *HardwareKVS) Capacity() int { return h.capacity }

// Read returns the versioned value for key; ok=false when absent. If the
// key is write-locked the read spins until released, modeling the hardware
// interlock.
func (h *HardwareKVS) Read(key string) (VersionedValue, bool) {
	for {
		h.mu.Lock()
		if !h.locked[key] {
			v, ok := h.data[key]
			h.reads++
			h.mu.Unlock()
			return v, ok
		}
		h.lockWait++
		h.mu.Unlock()
		// Spin; hardware would stall the read port for a cycle.
	}
}

// Write stores value under key with the given version. It returns ErrFull
// when inserting a new key into a full store.
func (h *HardwareKVS) Write(key string, value []byte, ver block.Version) error {
	h.mu.Lock()
	_, exists := h.data[key]
	if !exists && len(h.data) >= h.capacity {
		h.mu.Unlock()
		return fmt.Errorf("%w (capacity %d)", ErrFull, h.capacity)
	}
	h.locked[key] = true
	h.mu.Unlock()

	val := make([]byte, len(value))
	copy(val, value)

	h.mu.Lock()
	h.data[key] = VersionedValue{Value: val, Version: ver}
	h.writes++
	delete(h.locked, key)
	h.mu.Unlock()
	return nil
}

// Version returns the current version of key.
func (h *HardwareKVS) Version(key string) (block.Version, bool) {
	v, ok := h.Read(key)
	return v.Version, ok
}

// Len reports the number of stored entries.
func (h *HardwareKVS) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.data)
}

// AccessCounts reports cumulative reads and writes.
func (h *HardwareKVS) AccessCounts() (reads, writes int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reads, h.writes
}

// Snapshot returns a copy of the contents.
func (h *HardwareKVS) Snapshot() map[string]VersionedValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]VersionedValue, len(h.data))
	for k, v := range h.data {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		out[k] = VersionedValue{Value: val, Version: v.Version}
	}
	return out
}

// SnapshotsEqual compares two database snapshots; used by integration tests
// to prove the software and hardware commit paths produce identical state.
func SnapshotsEqual(a, b map[string]VersionedValue) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.Version != vb.Version || string(va.Value) != string(vb.Value) {
			return false
		}
	}
	return true
}
