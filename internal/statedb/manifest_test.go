package statedb

import (
	"os"
	"path/filepath"
	"testing"
)

// TestManagedCheckpointRotation: WriteManagedCheckpoint keeps the newest
// `keep` generations in the manifest (newest first), deletes the files it
// dropped, and Checkpoints reports exactly the retained set.
func TestManagedCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	kvs := NewStore()
	seedState(kvs, 8)
	for _, h := range []uint64{3, 6, 9} {
		refs, err := WriteManagedCheckpoint(dir, kvs, h, 2, nil)
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", h, err)
		}
		if refs[0].Height != h {
			t.Fatalf("newest retained %d after writing %d", refs[0].Height, h)
		}
		if len(refs) > 2 {
			t.Fatalf("retained %d generations, want <= 2", len(refs))
		}
	}
	refs, notes := Checkpoints(dir, "")
	if len(notes) != 0 {
		t.Fatalf("clean directory produced notes: %v", notes)
	}
	if len(refs) != 2 || refs[0].Height != 9 || refs[1].Height != 6 {
		t.Fatalf("refs %+v, want heights [9 6]", refs)
	}
	// The dropped height-3 generation file is gone.
	if _, err := os.Stat(filepath.Join(dir, ckptGenName(3))); !os.IsNotExist(err) {
		t.Error("dropped generation file survived rotation")
	}
	// Each retained generation loads at its recorded height.
	for _, r := range refs {
		_, h, err := LoadCheckpoint(filepath.Join(dir, r.File))
		if err != nil {
			t.Fatalf("load %s: %v", r.File, err)
		}
		if h != r.Height {
			t.Errorf("%s: height %d, manifest says %d", r.File, h, r.Height)
		}
	}
}

// TestManifestCorruptionFallsBackToScan: a clobbered MANIFEST degrades to
// a directory scan (with a note), never to a dead peer, and the next
// managed write rebuilds it.
func TestManifestCorruptionFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	kvs := NewStore()
	seedState(kvs, 4)
	for _, h := range []uint64{2, 4} {
		if _, err := WriteManagedCheckpoint(dir, kvs, h, 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	refs, notes := Checkpoints(dir, "")
	if len(notes) == 0 {
		t.Error("corrupt manifest produced no degradation note")
	}
	if len(refs) != 2 || refs[0].Height != 4 || refs[1].Height != 2 {
		t.Fatalf("scan fallback refs %+v, want heights [4 2]", refs)
	}
	// The next write repairs the manifest.
	if _, err := WriteManagedCheckpoint(dir, kvs, 6, 2, nil); err != nil {
		t.Fatal(err)
	}
	refs, notes = Checkpoints(dir, "")
	if len(notes) != 0 {
		t.Fatalf("manifest still degraded after rewrite: %v", notes)
	}
	if len(refs) != 2 || refs[0].Height != 6 {
		t.Fatalf("refs %+v after repair, want newest 6", refs)
	}
}

// TestManifestRejectsEscapingNames: a manifest entry whose file name
// escapes the peer directory is structural corruption, not a candidate.
func TestManifestRejectsEscapingNames(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, []CheckpointRef{{File: "../evil", Height: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(dir); err == nil {
		t.Fatal("escaping manifest entry accepted")
	}
}

// TestCheckpointsLegacyFile: a pre-manifest "checkpoint" file is appended
// last, so old peer directories still recover (after every generation is
// tried first).
func TestCheckpointsLegacyFile(t *testing.T) {
	dir := t.TempDir()
	kvs := NewStore()
	seedState(kvs, 4)
	if err := SaveCheckpoint(filepath.Join(dir, "checkpoint"), kvs, 7); err != nil {
		t.Fatal(err)
	}
	refs, _ := Checkpoints(dir, "checkpoint")
	if len(refs) != 1 || refs[0].File != "checkpoint" {
		t.Fatalf("legacy-only refs %+v", refs)
	}
	if _, err := WriteManagedCheckpoint(dir, kvs, 9, 2, nil); err != nil {
		t.Fatal(err)
	}
	refs, _ = Checkpoints(dir, "checkpoint")
	if len(refs) != 2 || refs[0].Height != 9 || refs[len(refs)-1].File != "checkpoint" {
		t.Fatalf("refs %+v, want generation first, legacy last", refs)
	}
}
