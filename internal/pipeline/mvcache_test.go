package pipeline

import (
	"testing"

	"bmac/internal/block"
	"bmac/internal/statedb"
)

func v(b, t uint64) block.Version { return block.Version{BlockNum: b, TxNum: t} }

func TestMVCacheFallsBackToStore(t *testing.T) {
	store := statedb.NewStore()
	store.Put("a", []byte("base"), v(1, 0))
	c := NewMVCache(store)

	ver, ok := c.Version("a", 5)
	if !ok || ver != v(1, 0) {
		t.Errorf("Version(a) = %v %v, want store version", ver, ok)
	}
	if _, ok := c.Version("missing", 5); ok {
		t.Error("missing key should report ok=false")
	}
}

func TestMVCacheResolvesCorrectBlockSnapshot(t *testing.T) {
	store := statedb.NewStore()
	store.Put("a", []byte("base"), v(1, 0))
	c := NewMVCache(store)
	c.Put("a", []byte("b3"), v(3, 7))
	c.Put("a", []byte("b5"), v(5, 2))

	cases := []struct {
		blockNum uint64
		want     block.Version
	}{
		{2, v(1, 0)}, // before any cached write: store version
		{3, v(1, 0)}, // block 3 must not see its own writes
		{4, v(3, 7)},
		{5, v(3, 7)},
		{6, v(5, 2)},
	}
	for _, tc := range cases {
		got, ok := c.Version("a", tc.blockNum)
		if !ok || got != tc.want {
			t.Errorf("Version(a, block %d) = %v %v, want %v", tc.blockNum, got, ok, tc.want)
		}
	}
	if vv, ok := c.Get("a", 6); !ok || string(vv.Value) != "b5" {
		t.Errorf("Get(a, 6) = %q %v, want b5", vv.Value, ok)
	}
	if vv, ok := c.Get("a", 2); !ok || string(vv.Value) != "base" {
		t.Errorf("Get(a, 2) = %q %v, want base", vv.Value, ok)
	}
}

func TestMVCacheWrittenBy(t *testing.T) {
	c := NewMVCache(statedb.NewStore())
	c.Put("a", []byte("x"), v(4, 3))

	if c.WrittenBy("a", 4, 3) {
		t.Error("a tx must not conflict with itself")
	}
	if c.WrittenBy("a", 4, 2) {
		t.Error("tx 2 precedes writer tx 3: no conflict")
	}
	if !c.WrittenBy("a", 4, 9) {
		t.Error("tx 9 reads after tx 3 wrote in the same block: conflict")
	}
	if c.WrittenBy("a", 5, 9) {
		t.Error("block 5 sees block 4's write as base state, not in-block")
	}
	if c.WrittenBy("b", 4, 9) {
		t.Error("unwritten key reported as written")
	}
}

func TestMVCacheMVCCCheck(t *testing.T) {
	store := statedb.NewStore()
	store.Put("a", []byte("x"), v(1, 0))
	c := NewMVCache(store)
	c.Put("a", []byte("y"), v(2, 5)) // unflushed block-2 write

	// Block 3 endorsed against post-block-2 state.
	if !c.MVCCCheck([]block.KVRead{{Key: "a", Version: v(2, 5)}}, 3) {
		t.Error("read at the cached version should pass")
	}
	if c.MVCCCheck([]block.KVRead{{Key: "a", Version: v(1, 0)}}, 3) {
		t.Error("stale read version should conflict")
	}
	// Block 2 itself still sees the pre-block-2 store state.
	if !c.MVCCCheck([]block.KVRead{{Key: "a", Version: v(1, 0)}}, 2) {
		t.Error("block 2 read at store version should pass")
	}
	// Absent keys match only the zero version.
	if !c.MVCCCheck([]block.KVRead{{Key: "nope"}}, 3) {
		t.Error("absent key at zero version should pass")
	}
	if c.MVCCCheck([]block.KVRead{{Key: "nope", Version: v(1, 1)}}, 3) {
		t.Error("absent key at nonzero version should conflict")
	}
}

func TestMVCacheRetire(t *testing.T) {
	store := statedb.NewStore()
	c := NewMVCache(store)
	c.Put("a", []byte("b2"), v(2, 0))
	c.Put("a", []byte("b3"), v(3, 0))
	c.Put("b", []byte("b2"), v(2, 1))

	// Simulate the flusher: block 2 lands in the store, then retires.
	store.Put("a", []byte("b2"), v(2, 0))
	store.Put("b", []byte("b2"), v(2, 1))
	c.Retire(2)

	if c.Len() != 1 {
		t.Errorf("after retire: %d cached keys, want 1 (a@block3)", c.Len())
	}
	if ver, ok := c.Version("a", 3); !ok || ver != v(2, 0) {
		t.Errorf("Version(a, 3) = %v %v, want store's (2,0)", ver, ok)
	}
	if ver, ok := c.Version("a", 4); !ok || ver != v(3, 0) {
		t.Errorf("Version(a, 4) = %v %v, want cached (3,0)", ver, ok)
	}
}

func TestMVCachePutOutOfOrderAndOverwrite(t *testing.T) {
	c := NewMVCache(statedb.NewStore())
	c.Put("a", []byte("late"), v(2, 9))
	c.Put("a", []byte("early"), v(2, 1)) // decided out of order by the scheduler
	if ver, ok := c.Version("a", 3); !ok || ver != v(2, 9) {
		t.Errorf("latest version = %v %v, want (2,9)", ver, ok)
	}
	// A transaction writing the same key twice: last value wins.
	c.Put("a", []byte("v1"), v(2, 9))
	if vv, ok := c.Get("a", 3); !ok || string(vv.Value) != "v1" {
		t.Errorf("overwrite: got %q", vv.Value)
	}
}
