package pipeline

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"bmac/internal/block"
	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// rig is the shared engine test fixture: a 3-org network, a client and an
// orderer, with a 2of2 smallbank policy.
type rig struct {
	peers   []*identity.Identity
	client  *identity.Identity
	orderer *identity.Identity
	pols    map[string]*policy.Policy
}

func newRig(t testing.TB) *rig {
	t.Helper()
	n := identity.NewNetwork()
	r := &rig{pols: map[string]*policy.Policy{"smallbank": policytest.MustParse("2of2")}}
	for i := 1; i <= 3; i++ {
		org := fmt.Sprintf("Org%d", i)
		if _, err := n.AddOrg(org); err != nil {
			t.Fatal(err)
		}
		p, err := n.NewIdentity(org, identity.RolePeer)
		if err != nil {
			t.Fatal(err)
		}
		r.peers = append(r.peers, p)
	}
	var err error
	if r.client, err = n.NewIdentity("Org1", identity.RoleClient); err != nil {
		t.Fatal(err)
	}
	if r.orderer, err = n.NewIdentity("Org1", identity.RoleOrderer); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) engine(workers int) *Engine {
	return New(Config{Workers: workers, Policies: r.pols, SkipLedger: true},
		statedb.NewStore(), nil)
}

// makeBlock builds a signed block of transactions from rw specs.
func (r *rig) makeBlock(t testing.TB, num uint64, rws []block.RWSet) *block.Block {
	t.Helper()
	envs := make([]block.Envelope, 0, len(rws))
	for _, rw := range rws {
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator:   r.client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet:     rw,
			Endorsers: r.peers[:2],
		})
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, *env)
	}
	b, err := block.NewBlock(num, nil, envs, r.orderer)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func w(key, val string) block.KVWrite { return block.KVWrite{Key: key, Value: []byte(val)} }

func TestEngineCommitsIndependentTxs(t *testing.T) {
	r := newRig(t)
	eng := r.engine(4)
	defer eng.Close()

	rws := make([]block.RWSet, 8)
	for i := range rws {
		rws[i] = block.RWSet{Writes: []block.KVWrite{w("k"+strconv.Itoa(i), "v")}}
	}
	b := r.makeBlock(t, 0, rws)
	res, err := eng.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if !res.BlockValid || block.CountValid(res.Flags) != 8 {
		t.Fatalf("flags = %v", res.Flags)
	}
	if eng.Store().Len() != 8 {
		t.Errorf("store has %d keys, want 8", eng.Store().Len())
	}
	if eng.Cache().Len() != 0 {
		t.Errorf("cache should be fully retired, has %d keys", eng.Cache().Len())
	}
	for i := 0; i < 8; i++ {
		ver, ok := eng.Store().Version("k" + strconv.Itoa(i))
		if !ok || ver != (block.Version{BlockNum: 0, TxNum: uint64(i)}) {
			t.Errorf("k%d version = %v %v", i, ver, ok)
		}
	}
}

func TestEngineIntraBlockConflict(t *testing.T) {
	r := newRig(t)
	eng := r.engine(4)
	defer eng.Close()

	// tx0 writes hot; tx1 reads hot at the pre-block (zero) version ->
	// must be flagged MVCC_READ_CONFLICT exactly like the sequential path.
	rws := []block.RWSet{
		{Writes: []block.KVWrite{w("hot", "a")}},
		{Reads: []block.KVRead{{Key: "hot"}}, Writes: []block.KVWrite{w("x", "b")}},
		{Writes: []block.KVWrite{w("y", "c")}},
	}
	b := r.makeBlock(t, 0, rws)
	res, err := eng.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(block.Valid), byte(block.MVCCReadConflict), byte(block.Valid)}
	if !block.FlagsEqual(res.Flags, want) {
		t.Fatalf("flags = %v, want %v", res.Flags, want)
	}
	if _, ok := eng.Store().Version("x"); ok {
		t.Error("conflicted tx's write leaked into the store")
	}
}

func TestEngineCrossBlockVersions(t *testing.T) {
	r := newRig(t)
	eng := r.engine(4)
	defer eng.Close()

	b0 := r.makeBlock(t, 0, []block.RWSet{{Writes: []block.KVWrite{w("a", "1")}}})
	if _, err := eng.ValidateAndCommit(block.Marshal(b0)); err != nil {
		t.Fatal(err)
	}
	// Block 1 reads "a" at the version block 0 wrote: valid. A stale read
	// (zero version) conflicts.
	b1 := r.makeBlock(t, 1, []block.RWSet{
		{Reads: []block.KVRead{{Key: "a", Version: block.Version{BlockNum: 0, TxNum: 0}}},
			Writes: []block.KVWrite{w("a", "2")}},
		{Reads: []block.KVRead{{Key: "a"}}, Writes: []block.KVWrite{w("b", "x")}},
	})
	res, err := eng.ValidateAndCommit(block.Marshal(b1))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(block.Valid), byte(block.MVCCReadConflict)}
	if !block.FlagsEqual(res.Flags, want) {
		t.Fatalf("flags = %v, want %v", res.Flags, want)
	}
	ver, _ := eng.Store().Version("a")
	if ver != (block.Version{BlockNum: 1, TxNum: 0}) {
		t.Errorf("a version = %v", ver)
	}
}

func TestEngineRejectsBadOrdererSignature(t *testing.T) {
	r := newRig(t)
	eng := r.engine(2)
	defer eng.Close()

	b := r.makeBlock(t, 0, []block.RWSet{{Writes: []block.KVWrite{w("a", "1")}}})
	b.Metadata.Signature.Signature[4] ^= 0xff
	res, err := eng.ValidateAndCommit(block.Marshal(b))
	if !errors.Is(err, validator.ErrBlockInvalid) {
		t.Fatalf("err = %v, want ErrBlockInvalid", err)
	}
	if res == nil || res.BlockValid {
		t.Fatal("block must be invalid")
	}
	for _, f := range res.Flags {
		if block.ValidationCode(f) != block.InvalidOther {
			t.Errorf("flags = %v", res.Flags)
		}
	}
	if eng.Store().Len() != 0 {
		t.Error("rejected block must not write state")
	}
}

func TestEngineMalformedBlock(t *testing.T) {
	r := newRig(t)
	eng := r.engine(2)
	defer eng.Close()
	if _, err := eng.ValidateAndCommit([]byte{0xff, 0x01, 0x02}); err == nil {
		t.Fatal("expected unmarshal error")
	}
}

// TestEnginePipelinedSubmit pushes several blocks through Submit/Results,
// exercising inter-block stage overlap, and checks ordering and state.
func TestEnginePipelinedSubmit(t *testing.T) {
	r := newRig(t)
	eng := r.engine(4)
	defer eng.Close()

	const blocks = 6
	for n := uint64(0); n < blocks; n++ {
		// tx0 reads the previous block's "chain" write, tx1 re-writes it:
		// the reader precedes the writer, so only the cross-block version
		// matters — correct multi-version resolution must validate the
		// read even while the previous block is still flushing.
		rws := []block.RWSet{
			{Writes: []block.KVWrite{w("b"+strconv.Itoa(int(n)), "v")}},
			{Writes: []block.KVWrite{w("chain", strconv.Itoa(int(n)))}},
		}
		if n > 0 {
			rws[0].Reads = []block.KVRead{{Key: "chain",
				Version: block.Version{BlockNum: n - 1, TxNum: 1}}}
		}
		eng.Submit(block.Marshal(r.makeBlock(t, n, rws)))
	}
	for n := uint64(0); n < blocks; n++ {
		o := <-eng.Results()
		if o.Err != nil {
			t.Fatalf("block %d: %v", n, o.Err)
		}
		if o.Res.BlockNum != n {
			t.Fatalf("results out of order: got block %d, want %d", o.Res.BlockNum, n)
		}
		if got := block.CountValid(o.Res.Flags); got != 2 {
			t.Fatalf("block %d: %d valid txs, flags %v", n, got, o.Res.Flags)
		}
	}
	ver, _ := eng.Store().Version("chain")
	if ver != (block.Version{BlockNum: blocks - 1, TxNum: 1}) {
		t.Errorf("chain version = %v", ver)
	}
}
