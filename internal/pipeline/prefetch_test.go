package pipeline

import (
	"strconv"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/statedb"
)

// TestPrefetchWarmsHybridCache checks the warm-up path end to end: with
// prefetch on, a block's distinct read-set keys are pulled from the host
// into the hybrid cache, the block still validates identically, and the
// engine reports the warm-up count.
func TestPrefetchWarmsHybridCache(t *testing.T) {
	r := newRig(t)
	host := statedb.NewStore()
	for i := 0; i < 16; i++ {
		host.Put("acct"+strconv.Itoa(i), []byte("100"), block.Version{})
	}
	hy := statedb.NewHybridKVS(64, host)
	hy.SetHostReadLatency(200 * time.Microsecond)

	eng := New(Config{Workers: 2, Policies: r.pols, SkipLedger: true, Prefetch: true},
		hy, nil)
	defer eng.Close()

	// 8 txs, each reading two hot accounts (with overlap) and writing a
	// unique key: 16 distinct read keys in total.
	rws := make([]block.RWSet, 8)
	for i := range rws {
		rws[i] = block.RWSet{
			Reads: []block.KVRead{
				{Key: "acct" + strconv.Itoa(2*i)},
				{Key: "acct" + strconv.Itoa(2*i+1)},
			},
			Writes: []block.KVWrite{{Key: "out" + strconv.Itoa(i), Value: []byte("v")}},
		}
	}
	b := r.makeBlock(t, 0, rws)
	res, err := eng.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := block.CountValid(res.Flags); got != 8 {
		t.Fatalf("%d/8 valid, flags %v", got, res.Flags)
	}
	if got := eng.PrefetchedKeys(); got != 16 {
		t.Errorf("prefetched %d keys, want 16 (one per distinct read key)", got)
	}
	// The warm-ups happened: all 16 accounts are hardware-resident, so the
	// mvcc stage's version checks were cache hits.
	hits, _, _, hostReads, _ := hy.Stats()
	if hostReads != 16 {
		t.Errorf("host reads = %d, want 16 (prefetch only)", hostReads)
	}
	if hits < 16 {
		t.Errorf("cache hits = %d, want >= 16 (mvcc re-reads served from hardware)", hits)
	}
	if res.Breakdown.PrefetchWait < 0 {
		t.Errorf("negative prefetch wait %v", res.Breakdown.PrefetchWait)
	}
}

// TestPrefetchOffIssuesNoWarmups pins the default: no prefetcher, no
// warm-up reads, PrefetchedKeys reports zero.
func TestPrefetchOffIssuesNoWarmups(t *testing.T) {
	r := newRig(t)
	eng := r.engine(2)
	defer eng.Close()
	b := r.makeBlock(t, 0, []block.RWSet{
		{Reads: []block.KVRead{{Key: "nope"}}, Writes: []block.KVWrite{w("a", "1")}},
	})
	if _, err := eng.ValidateAndCommit(block.Marshal(b)); err != nil {
		t.Fatal(err)
	}
	if eng.PrefetchedKeys() != 0 {
		t.Errorf("prefetched %d keys with prefetch off", eng.PrefetchedKeys())
	}
}

// TestPrefetchAbsentKeys checks warm-ups of keys the backend has never seen
// (reads endorsed at the zero version): they must not invent state or skew
// verdicts.
func TestPrefetchAbsentKeys(t *testing.T) {
	r := newRig(t)
	eng := New(Config{Workers: 2, Policies: r.pols, SkipLedger: true, Prefetch: true},
		statedb.NewHybridKVS(8, statedb.NewStore()), nil)
	defer eng.Close()

	b := r.makeBlock(t, 0, []block.RWSet{
		{Reads: []block.KVRead{{Key: "ghost"}}, Writes: []block.KVWrite{w("a", "1")}},
		{Reads: []block.KVRead{{Key: "ghost", Version: block.Version{BlockNum: 7}}},
			Writes: []block.KVWrite{w("b", "2")}},
	})
	res, err := eng.ValidateAndCommit(block.Marshal(b))
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(block.Valid), byte(block.MVCCReadConflict)}
	if !block.FlagsEqual(res.Flags, want) {
		t.Fatalf("flags = %v, want %v", res.Flags, want)
	}
	if _, ok := eng.Store().Version("ghost"); ok {
		t.Error("prefetch materialized an absent key")
	}
}
