package pipeline

import (
	"reflect"
	"testing"
)

func TestBuildGraphEmpty(t *testing.T) {
	g := BuildGraph(nil)
	if g.N() != 0 || g.Edges() != 0 || g.CriticalPath() != 0 {
		t.Errorf("empty graph: n=%d edges=%d cp=%d", g.N(), g.Edges(), g.CriticalPath())
	}
}

func TestBuildGraphIndependent(t *testing.T) {
	g := BuildGraph([]Access{
		{Reads: []string{"a"}, Writes: []string{"x"}},
		{Reads: []string{"b"}, Writes: []string{"y"}},
		{Reads: []string{"c"}, Writes: []string{"z"}},
	})
	if g.Edges() != 0 {
		t.Errorf("independent txs: %d edges", g.Edges())
	}
	if g.CriticalPath() != 1 {
		t.Errorf("critical path = %d, want 1", g.CriticalPath())
	}
}

func TestBuildGraphRAWChain(t *testing.T) {
	// 0 writes a, 1 reads a writes b, 2 reads b: a serial chain.
	g := BuildGraph([]Access{
		{Writes: []string{"a"}},
		{Reads: []string{"a"}, Writes: []string{"b"}},
		{Reads: []string{"b"}},
	})
	if g.Edges() != 2 {
		t.Fatalf("edges = %d, want 2", g.Edges())
	}
	if !reflect.DeepEqual(g.Deps(1), []int{0}) || !reflect.DeepEqual(g.Deps(2), []int{1}) {
		t.Errorf("deps: %v %v", g.Deps(1), g.Deps(2))
	}
	if g.CriticalPath() != 3 {
		t.Errorf("critical path = %d, want 3", g.CriticalPath())
	}
}

func TestBuildGraphNoWAWOrWAREdges(t *testing.T) {
	// 0 writes a; 1 writes a (WAW); 2 reads b then 3 writes b (WAR seen
	// from 3's side). Neither pair needs an edge.
	g := BuildGraph([]Access{
		{Writes: []string{"a"}},
		{Writes: []string{"a"}},
		{Reads: []string{"b"}},
		{Writes: []string{"b"}},
	})
	if g.Edges() != 0 {
		t.Errorf("WAW/WAR produced %d edges, want 0", g.Edges())
	}
}

func TestBuildGraphDedupAndOrder(t *testing.T) {
	// tx2 reads two keys both written by tx0: exactly one edge. Also reads
	// a key written by the later tx3: no edge (writers after the reader
	// never constrain it).
	g := BuildGraph([]Access{
		{Writes: []string{"a", "b"}},
		{},
		{Reads: []string{"a", "b", "c"}},
		{Writes: []string{"c"}},
	})
	if !reflect.DeepEqual(g.Deps(2), []int{0}) {
		t.Errorf("deps(2) = %v, want [0]", g.Deps(2))
	}
	if g.Edges() != 1 {
		t.Errorf("edges = %d, want 1", g.Edges())
	}
	if !reflect.DeepEqual(g.Dependents(0), []int{2}) {
		t.Errorf("dependents(0) = %v", g.Dependents(0))
	}
}

func TestAccessOf(t *testing.T) {
	if a := AccessOf(nil); len(a.Reads) != 0 || len(a.Writes) != 0 {
		t.Error("nil rwset should have empty access")
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// 0 writes a,b; 1 reads a; 2 reads b; 3 reads c written by 1 and 2 -> depth 3.
	g := BuildGraph([]Access{
		{Writes: []string{"a", "b"}},
		{Reads: []string{"a"}, Writes: []string{"c"}},
		{Reads: []string{"b"}, Writes: []string{"c"}},
		{Reads: []string{"c"}},
	})
	if g.CriticalPath() != 3 {
		t.Errorf("critical path = %d, want 3", g.CriticalPath())
	}
	if !reflect.DeepEqual(g.Deps(3), []int{1, 2}) {
		t.Errorf("deps(3) = %v", g.Deps(3))
	}
}
