package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunGraphRespectsDependencies runs a randomized-shape graph and checks
// every transaction executes after all of its dependencies.
func TestRunGraphRespectsDependencies(t *testing.T) {
	// A block where tx i reads the key written by tx i-1 in pairs, plus
	// some independent transactions.
	accs := make([]Access, 64)
	for i := range accs {
		switch i % 4 {
		case 0:
			accs[i] = Access{Writes: []string{key(i)}}
		case 1:
			accs[i] = Access{Reads: []string{key(i - 1)}, Writes: []string{key(i)}}
		case 2:
			accs[i] = Access{Reads: []string{key(i - 1)}}
		default:
			accs[i] = Access{Writes: []string{key(i)}}
		}
	}
	g := BuildGraph(accs)

	var mu sync.Mutex
	decided := make(map[int]bool)
	RunGraph(g, 8, func(i int) {
		mu.Lock()
		for _, d := range g.Deps(i) {
			if !decided[d] {
				t.Errorf("tx %d decided before dependency %d", i, d)
			}
		}
		decided[i] = true
		mu.Unlock()
	})
	if len(decided) != len(accs) {
		t.Fatalf("decided %d/%d", len(decided), len(accs))
	}
}

func TestRunGraphRunsEveryTxOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		g := BuildGraph(make([]Access, 33)) // fully independent
		var count int64
		RunGraph(g, workers, func(i int) { atomic.AddInt64(&count, 1) })
		if count != 33 {
			t.Errorf("workers=%d: ran %d tasks, want 33", workers, count)
		}
	}
}

func TestRunGraphSerialChain(t *testing.T) {
	accs := make([]Access, 20)
	for i := range accs {
		accs[i] = Access{Writes: []string{"hot"}, Reads: []string{"hot"}}
	}
	g := BuildGraph(accs)
	order := make([]int, 0, 20)
	RunGraph(g, 8, func(i int) { order = append(order, i) }) // safe: chain is serial
	for i, v := range order {
		if v != i {
			t.Fatalf("serial chain executed out of order: %v", order)
		}
	}
}

func TestRunGraphEmpty(t *testing.T) {
	RunGraph(BuildGraph(nil), 4, func(int) { t.Fatal("no tasks expected") })
}

func key(i int) string { return "k" + string(rune('0'+i%10)) + string(rune('a'+i/10)) }
