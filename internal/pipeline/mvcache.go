package pipeline

import (
	"sync"

	"bmac/internal/block"
	"bmac/internal/statedb"
)

// MVCache is a multi-version state cache layered in front of any
// statedb.KVS backend. The commit engine publishes the write sets of decided
// blocks here *before* they are flushed to the backing store, so the mvcc
// stage of block n+1 can start while the state-database writes (and ledger
// commit) of block n are still in flight. Each key holds a short version
// chain ordered by (block, tx); lookups resolve "the state as of the end of
// block n-1" regardless of how far the flusher has fallen behind.
//
// Entries are retired after their block is flushed — by then the backing
// store answers with the same version, so the two sources are always
// consistent during the hand-off window.
type MVCache struct {
	store statedb.KVS

	mu     sync.RWMutex
	chains map[string][]mvEntry // guarded by mu; ascending by Version
}

type mvEntry struct {
	ver block.Version
	val []byte
}

// NewMVCache creates an empty cache over the given backing store.
func NewMVCache(store statedb.KVS) *MVCache {
	return &MVCache{store: store, chains: make(map[string][]mvEntry)}
}

// Store returns the backing state database.
func (c *MVCache) Store() statedb.KVS { return c.store }

// Put records a decided write of key at ver. Versions need not arrive in
// order (the scheduler decides transactions as dependencies resolve):
// insertion keeps each chain sorted.
func (c *MVCache) Put(key string, val []byte, ver block.Version) {
	cp := make([]byte, len(val))
	copy(cp, val)
	c.mu.Lock()
	chain := c.chains[key]
	// Common case: append at the tail (writes arrive roughly in order).
	i := len(chain)
	for i > 0 && ver.Less(chain[i-1].ver) {
		i--
	}
	if i > 0 && chain[i-1].ver == ver {
		chain[i-1].val = cp // same (block, tx) rewrote the key: last wins
	} else {
		chain = append(chain, mvEntry{})
		copy(chain[i+1:], chain[i:])
		chain[i] = mvEntry{ver: ver, val: cp}
	}
	c.chains[key] = chain
	c.mu.Unlock()
}

// Version resolves the version of key as observed by block blockNum before
// any of blockNum's own writes: the newest cached version from an earlier
// block, falling back to the backing store. ok=false means the key does not
// exist in that snapshot (Fabric's zero-version semantics apply).
func (c *MVCache) Version(key string, blockNum uint64) (block.Version, bool) {
	c.mu.RLock()
	chain := c.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].ver.BlockNum < blockNum {
			v := chain[i].ver
			c.mu.RUnlock()
			return v, true
		}
	}
	c.mu.RUnlock()
	return c.store.Version(key)
}

// Get resolves the value+version of key in the same snapshot as Version.
func (c *MVCache) Get(key string, blockNum uint64) (statedb.VersionedValue, bool) {
	c.mu.RLock()
	chain := c.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].ver.BlockNum < blockNum {
			vv := statedb.VersionedValue{Value: chain[i].val, Version: chain[i].ver}
			c.mu.RUnlock()
			return vv, true
		}
	}
	c.mu.RUnlock()
	vv, err := c.store.Get(key)
	return vv, err == nil
}

// MVCCCheck re-checks a read set against the snapshot visible to blockNum,
// mirroring statedb.Store.MVCCCheck against pre-block state: every read's
// endorsed version must equal the current one (absent keys match only the
// zero version).
func (c *MVCache) MVCCCheck(reads []block.KVRead, blockNum uint64) bool {
	for _, r := range reads {
		cur, ok := c.Version(r.Key, blockNum)
		if !ok {
			if r.Version != (block.Version{}) {
				return false
			}
			continue
		}
		if cur != r.Version {
			return false
		}
	}
	return true
}

// WrittenBy reports whether any transaction of blockNum with index < txNum
// has published a write of key — the intra-block read-conflict check, the
// parallel equivalent of the sequential validator's writtenInBlock map.
// Only *valid* transactions publish writes, so a hit is always a conflict.
func (c *MVCache) WrittenBy(key string, blockNum, txNum uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	chain := c.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i].ver
		if e.BlockNum < blockNum {
			return false // chains are sorted: nothing newer can match
		}
		if e.BlockNum == blockNum && e.TxNum < txNum {
			return true
		}
	}
	return false
}

// Retire drops every cached entry written by blocks <= blockNum. Call only
// after those blocks' writes have landed in the backing store.
func (c *MVCache) Retire(blockNum uint64) {
	c.mu.Lock()
	for key, chain := range c.chains {
		keep := chain[:0]
		for _, e := range chain {
			if e.ver.BlockNum > blockNum {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			delete(c.chains, key)
		} else {
			c.chains[key] = keep
		}
	}
	c.mu.Unlock()
}

// Len reports the number of keys with live cached versions.
func (c *MVCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.chains)
}
