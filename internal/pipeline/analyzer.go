// Package pipeline implements the parallel pipelined commit engine: a
// software validator that overlaps the validation stages of consecutive
// blocks (unmarshal → block-verify → vscc → mvcc/commit) and, within a
// block, executes the mvcc checks and state writes of *independent*
// transactions concurrently.
//
// The engine is Fabric-equivalent: its validation flags, commit hash and
// final state database contents are bit-identical to the sequential
// software validator (internal/validator) on every block. The differential
// tests in this package prove it.
//
// Three pieces cooperate:
//
//   - the conflict analyzer (this file) builds a per-block transaction
//     dependency graph from declared read/write sets;
//   - the scheduler (scheduler.go) drains that graph with a worker pool,
//     deciding transactions as soon as all of their dependencies have been
//     decided;
//   - the multi-version state cache (mvcache.go) sits in front of
//     internal/statedb so reads issued while earlier blocks are still being
//     flushed resolve to the correct version.
package pipeline

import "bmac/internal/block"

// Access is the declared key-access footprint of one transaction: the keys
// of its endorsement-time read set and write set.
type Access struct {
	Reads  []string
	Writes []string
}

// AccessOf extracts the access footprint from a read/write set. A nil rwset
// (e.g. a transaction that failed to decode) has an empty footprint.
func AccessOf(rw *block.RWSet) Access {
	if rw == nil {
		return Access{}
	}
	a := Access{
		Reads:  make([]string, len(rw.Reads)),
		Writes: make([]string, len(rw.Writes)),
	}
	for i, r := range rw.Reads {
		a.Reads[i] = r.Key
	}
	for i, w := range rw.Writes {
		a.Writes[i] = w.Key
	}
	return a
}

// Graph is a per-block transaction dependency DAG. There is an edge j → i
// exactly when j < i and the write set of j intersects the read set of i: a
// read-after-write hazard. Transaction i's mvcc verdict depends on whether
// each such j turned out valid (and therefore published its writes), so i
// must not be decided before all of its dependencies are.
//
// Write-write and write-after-read pairs need no edges: final state is
// reconstructed from the multi-version cache in transaction order (last
// valid writer wins), and reads never observe in-flight writes of later
// transactions because version lookups filter on transaction number.
type Graph struct {
	n          int
	deps       [][]int // deps[i]: transactions i waits on (all < i)
	dependents [][]int // dependents[j]: transactions waiting on j (all > j)
	indegree   []int
	edges      int
}

// BuildGraph analyzes the declared access footprints of one block's
// transactions and returns the dependency graph.
func BuildGraph(accs []Access) *Graph {
	g := &Graph{
		n:          len(accs),
		deps:       make([][]int, len(accs)),
		dependents: make([][]int, len(accs)),
		indegree:   make([]int, len(accs)),
	}
	// writers[key] = ascending indices of transactions declaring a write.
	writers := make(map[string][]int)
	seen := make(map[int]bool) // per-tx dedup scratch, reset each iteration
	for i, a := range accs {
		for k := range seen {
			delete(seen, k)
		}
		for _, key := range a.Reads {
			for _, j := range writers[key] {
				// writers hold only indices < i (appended after this loop).
				if !seen[j] {
					seen[j] = true
					g.deps[i] = append(g.deps[i], j)
					g.dependents[j] = append(g.dependents[j], i)
					g.edges++
				}
			}
		}
		g.indegree[i] = len(g.deps[i])
		for _, key := range a.Writes {
			writers[key] = append(writers[key], i)
		}
	}
	return g
}

// N returns the number of transactions.
func (g *Graph) N() int { return g.n }

// Edges returns the number of dependency edges (a contention measure).
func (g *Graph) Edges() int { return g.edges }

// Deps returns the dependencies of transaction i (indices < i).
func (g *Graph) Deps(i int) []int { return g.deps[i] }

// Dependents returns the transactions that wait on transaction i.
func (g *Graph) Dependents(i int) []int { return g.dependents[i] }

// CriticalPath returns the length (in transactions) of the longest
// dependency chain — the lower bound on parallel execution depth. An empty
// block reports 0; a conflict-free block reports 1.
func (g *Graph) CriticalPath() int {
	depth := make([]int, g.n)
	max := 0
	for i := 0; i < g.n; i++ { // deps all have smaller indices: one pass
		d := 1
		for _, j := range g.deps[i] {
			if depth[j]+1 > d {
				d = depth[j] + 1
			}
		}
		depth[i] = d
		if d > max {
			max = d
		}
	}
	return max
}
