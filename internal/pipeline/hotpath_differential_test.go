package pipeline

import (
	"bytes"
	"math/rand"
	"testing"

	"bmac/internal/fabcrypto"
	"bmac/internal/statedb"
	"bmac/internal/validator"
	"bmac/internal/wire"
)

// hotpathToggle is one on/off combination of the commit hot-path
// optimizations under differential test.
type hotpathToggle struct {
	name        string
	sigCache    bool
	certCache   bool
	batch       int
	parseCache  bool
	marshalPool bool
}

func hotpathToggles() []hotpathToggle {
	return []hotpathToggle{
		{name: "all-off", marshalPool: false},
		{name: "sigcache", sigCache: true, marshalPool: true},
		{name: "certcache", certCache: true, marshalPool: true},
		{name: "batch", batch: 3, marshalPool: true},
		{name: "sigcache+batch", sigCache: true, batch: 3},
		{name: "parseonce", parseCache: true},
		{name: "pool-only", marshalPool: true},
		{name: "all-on", sigCache: true, certCache: true, batch: 3, parseCache: true, marshalPool: true},
	}
}

// TestHotpathDifferentialToggles validates the same random fault-injected
// chains with every hot-path optimization independently toggled on and off,
// through BOTH commit engines, and demands bit-identical validation flags,
// commit hashes and final state versus the plain sequential baseline. Run
// with -race: the caches and the marshal pool are shared across the
// engine's stage goroutines.
func TestHotpathDifferentialToggles(t *testing.T) {
	defer wire.SetBufferPooling(true)
	r := newRig(t)
	rng := rand.New(rand.NewSource(99))
	raws := buildRandomBlocks(t, r, rng, 6)

	// Reference: plain sequential validator, no optimizations.
	wire.SetBufferPooling(false)
	refStore := statedb.NewStore()
	ref := validator.New(validator.Config{Workers: 2, Policies: r.pols, SkipLedger: true}, refStore, nil)
	type want struct {
		flags  []byte
		commit []byte
	}
	wants := make([]want, len(raws))
	for n, raw := range raws {
		res, err := ref.ValidateAndCommit(raw)
		if err != nil {
			t.Fatal(err)
		}
		wants[n] = want{flags: res.Flags, commit: res.CommitHash}
	}
	refSnap := refStore.Snapshot()

	for _, tog := range hotpathToggles() {
		t.Run(tog.name, func(t *testing.T) {
			wire.SetBufferPooling(tog.marshalPool)
			var sc *fabcrypto.SigCache
			var cc *fabcrypto.CertCache
			var pc *validator.ParseCache
			if tog.sigCache {
				sc = fabcrypto.NewSigCache(4096)
			}
			if tog.certCache {
				cc = fabcrypto.NewCertCache(512)
			}
			if tog.parseCache {
				pc = validator.NewParseCache(1024)
			}

			// Sequential validator with the toggles applied. Running it
			// first also pre-warms the shared caches, so the engine pass
			// below exercises the cross-path hit case.
			swStore := statedb.NewStore()
			sw := validator.New(validator.Config{
				Workers: 2, Policies: r.pols, SkipLedger: true,
				SigCache: sc, CertCache: cc, BatchVerifyWorkers: tog.batch, ParseCache: pc,
			}, swStore, nil)
			var swHits, swParseHits int
			for n, raw := range raws {
				res, err := sw.ValidateAndCommit(raw)
				if err != nil {
					t.Fatalf("block %d: %v", n, err)
				}
				checkSame(t, "sequential", n, res.Flags, res.CommitHash, wants[n].flags, wants[n].commit)
				swHits += res.Breakdown.SigCacheHits
				swParseHits += res.Breakdown.ParseCacheHits
			}
			if !statedb.SnapshotsEqual(swStore.Snapshot(), refSnap) {
				t.Fatal("sequential final state diverged")
			}

			// Parallel pipelined engine sharing the same caches.
			engStore := statedb.NewStore()
			eng := New(Config{
				Workers: 3, Policies: r.pols, SkipLedger: true,
				SigCache: sc, CertCache: cc, BatchVerifyWorkers: tog.batch, ParseCache: pc,
			}, engStore, nil)
			var engHits, engParseHits int
			for n, raw := range raws {
				res, err := eng.ValidateAndCommit(raw)
				if err != nil {
					t.Fatalf("engine block %d: %v", n, err)
				}
				checkSame(t, "engine", n, res.Flags, res.CommitHash, wants[n].flags, wants[n].commit)
				engHits += res.Breakdown.SigCacheHits
				engParseHits += res.Breakdown.ParseCacheHits
			}
			eng.Close()
			if !statedb.SnapshotsEqual(engStore.Snapshot(), refSnap) {
				t.Fatal("engine final state diverged")
			}

			// The second pass over shared caches must actually hit: the
			// speedup claim depends on it, so pin it here.
			if tog.sigCache && engHits == 0 {
				t.Fatal("sig cache shared across paths never hit")
			}
			if !tog.sigCache && (swHits != 0 || engHits != 0) {
				t.Fatalf("sig cache hits without a cache: sw=%d eng=%d", swHits, engHits)
			}
			if tog.parseCache && engParseHits == 0 {
				t.Fatal("parse cache shared across paths never hit")
			}
			if !tog.parseCache && (swParseHits != 0 || engParseHits != 0) {
				t.Fatalf("parse cache hits without a cache: sw=%d eng=%d", swParseHits, engParseHits)
			}
		})
	}
}

func checkSame(t *testing.T, path string, n int, flags, commit, wantFlags, wantCommit []byte) {
	t.Helper()
	if !bytes.Equal(flags, wantFlags) {
		t.Fatalf("%s block %d: flags %v != baseline %v", path, n, flags, wantFlags)
	}
	if !bytes.Equal(commit, wantCommit) {
		t.Fatalf("%s block %d: commit hash diverged", path, n)
	}
}

// TestHotpathSigCacheSteadyState pins the headline behavior the benchmark
// record claims: re-validating a block whose signatures are already cached
// performs zero real ECDSA verifications — every check is a cache hit.
func TestHotpathSigCacheSteadyState(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(7))
	raws := buildRandomBlocks(t, r, rng, 2)

	sc := fabcrypto.NewSigCache(4096)
	v := validator.New(validator.Config{
		Workers: 2, Policies: r.pols, SkipLedger: true, SigCache: sc,
	}, statedb.NewStore(), nil)
	for _, raw := range raws {
		if _, err := v.ValidateAndCommit(raw); err != nil {
			t.Fatal(err)
		}
	}
	// Steady state: a fresh validator (fresh store) sharing the cache.
	v2 := validator.New(validator.Config{
		Workers: 2, Policies: r.pols, SkipLedger: true, SigCache: sc,
	}, statedb.NewStore(), nil)
	for n, raw := range raws {
		res, err := v2.ValidateAndCommit(raw)
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown.ECDSACount != 0 {
			t.Fatalf("block %d: %d real verifies at steady state (want 0, %d hits)",
				n, res.Breakdown.ECDSACount, res.Breakdown.SigCacheHits)
		}
		if res.Breakdown.SigCacheHits == 0 {
			t.Fatalf("block %d: no cache hits at steady state", n)
		}
	}
	if hr := sc.HitRate(); hr < 0.4 {
		t.Fatalf("hit rate %.2f, want >= 0.4 after a full repeat", hr)
	}
}
