package pipeline

import (
	"sync"
	"sync/atomic"

	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// prefetcher is the engine's async read-set warm-up stage: as soon as a
// block's transactions are unmarshalled, every distinct read-set key is
// handed to a bounded worker pool that issues a read against the backing
// state database. Against a HybridKVS the read absorbs the cache miss (and
// its modeled host/PCIe latency) while the block is still in the vscc
// stage, so by the time mvcc runs the keys are hardware-resident — the
// software analogue of the paper's Figure 12c latency hiding, and the same
// trick as Octopus's pipeline prefetcher and classic parallel-I/O
// read-ahead.
//
// Warm-up reads are pure cache promotions: they never touch MVCache version
// chains, so validation verdicts are bit-identical with prefetch on or off.
type prefetcher struct {
	kvs   statedb.KVS
	tasks chan prefetchTask
	pool  sync.WaitGroup

	keys atomic.Int64 // total warm-up reads issued
}

// prefetchTask is one key warm-up; done tracks its block's completion.
type prefetchTask struct {
	key  string
	done *sync.WaitGroup
}

// newPrefetcher starts a pool of `workers` warm-up readers over kvs.
func newPrefetcher(kvs statedb.KVS, workers int) *prefetcher {
	if workers < 1 {
		workers = 1
	}
	p := &prefetcher{kvs: kvs, tasks: make(chan prefetchTask, 1024)}
	for i := 0; i < workers; i++ {
		p.pool.Add(1)
		go func() {
			defer p.pool.Done()
			for t := range p.tasks {
				// The value is discarded: the read exists only to pull the
				// key into the backend's fast tier.
				_, _ = p.kvs.Get(t.key) // bmaclint:allow errdiscard (prefetch: only the cache warming matters, miss is fine)
				p.keys.Add(1)
				t.done.Done()
			}
		}()
	}
	return p
}

// start issues async warm-up reads for every distinct read-set key of one
// block and returns the block's completion tracker. Enqueueing applies
// backpressure (the task channel is bounded), never loss.
func (p *prefetcher) start(txs []validator.ParsedTx) *sync.WaitGroup {
	done := new(sync.WaitGroup)
	seen := make(map[string]struct{})
	for i := range txs {
		if txs[i].RW == nil {
			continue // malformed payload: no read set to warm
		}
		for _, r := range txs[i].RW.Reads {
			if _, dup := seen[r.Key]; dup {
				continue
			}
			seen[r.Key] = struct{}{}
			done.Add(1)
			p.tasks <- prefetchTask{key: r.Key, done: done}
		}
	}
	return done
}

// close drains the pool; pending warm-ups complete first.
func (p *prefetcher) close() {
	close(p.tasks)
	p.pool.Wait()
}

// prefetched reports the total number of warm-up reads issued.
func (p *prefetcher) prefetched() int { return int(p.keys.Load()) }
