package pipeline

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/statedb"
	"bmac/internal/validator"
)

// randomRWSet builds a read/write set over a small shared key pool. Reads
// are endorsed at the version currently in `world` (the pre-block state a
// live endorser would observe), with occasional deliberately stale versions
// to force mvcc conflicts; hot keys force intra-block dependencies.
func randomRWSet(rng *rand.Rand, world map[string]block.Version) block.RWSet {
	var rw block.RWSet
	nReads := rng.Intn(3)
	for r := 0; r < nReads; r++ {
		key := "k" + strconv.Itoa(rng.Intn(6))
		ver := world[key]
		if rng.Intn(8) == 0 {
			ver = block.Version{BlockNum: ver.BlockNum + 1} // stale/wrong
		}
		rw.Reads = append(rw.Reads, block.KVRead{Key: key, Version: ver})
	}
	nWrites := 1 + rng.Intn(2)
	for wi := 0; wi < nWrites; wi++ {
		key := "k" + strconv.Itoa(rng.Intn(6))
		rw.Writes = append(rw.Writes, block.KVWrite{
			Key: key, Value: []byte{byte(rng.Intn(256))},
		})
	}
	return rw
}

// buildRandomBlocks creates a chain of blocks with random fault injection
// (bad client signatures, corrupt/missing endorsements, stale reads) and
// simultaneously tracks the endorsement-time world state by replaying the
// sequential validator's semantics per block.
func buildRandomBlocks(t *testing.T, r *rig, rng *rand.Rand, nBlocks int) [][]byte {
	t.Helper()
	world := make(map[string]block.Version) // committed version per key
	raws := make([][]byte, 0, nBlocks)
	sw := validator.New(validator.Config{
		Workers: 3, Policies: r.pols, SkipLedger: true,
	}, statedb.NewStore(), nil)

	for n := 0; n < nBlocks; n++ {
		nTxs := 1 + rng.Intn(10)
		rws := make([]block.RWSet, 0, nTxs)
		envs := make([]block.Envelope, 0, nTxs)
		for i := 0; i < nTxs; i++ {
			spec := block.TxSpec{
				Creator:   r.client,
				Chaincode: "smallbank",
				Channel:   "ch1",
				RWSet:     randomRWSet(rng, world),
				Endorsers: r.peers[:2],
			}
			switch rng.Intn(6) {
			case 0:
				spec.CorruptClientSig = true
			case 1:
				spec.CorruptEndorsementIdx = 1 + rng.Intn(2)
			case 2:
				spec.Endorsers = r.peers[:1] // policy failure (2of2)
			}
			env, err := block.NewEndorsedEnvelope(spec)
			if err != nil {
				t.Fatal(err)
			}
			rws = append(rws, spec.RWSet)
			envs = append(envs, *env)
		}
		b, err := block.NewBlock(uint64(n), nil, envs, r.orderer)
		if err != nil {
			t.Fatal(err)
		}
		raw := block.Marshal(b)
		raws = append(raws, raw)

		// Advance the endorsement-time world using the reference validator
		// so later blocks read versions a live endorser would have seen.
		res, err := sw.ValidateAndCommit(raw)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range res.Flags {
			if block.ValidationCode(f) != block.Valid {
				continue
			}
			for _, wr := range rws[i].Writes {
				world[wr.Key] = block.Version{BlockNum: uint64(n), TxNum: uint64(i)}
			}
		}
	}
	return raws
}

// TestDifferentialRandomized is the pipeline counterpart of
// internal/core/differential_test.go: random multi-block chains with fault
// injection, validated by the sequential validator and the parallel engine
// in lockstep. Flags, commit hash and final state must be byte-identical.
// Run with -race to also shake out scheduler/cache races.
func TestDifferentialRandomized(t *testing.T) {
	r := newRig(t)
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		raws := buildRandomBlocks(t, r, rng, 6)

		sw := validator.New(validator.Config{
			Workers: 3, Policies: r.pols, SkipLedger: true,
		}, statedb.NewStore(), nil)
		eng := New(Config{Workers: 4, Policies: r.pols, SkipLedger: true},
			statedb.NewStore(), nil)

		for n, raw := range raws {
			swRes, swErr := sw.ValidateAndCommit(raw)
			parRes, parErr := eng.ValidateAndCommit(raw)
			if (swErr == nil) != (parErr == nil) {
				t.Fatalf("seed %d block %d: error divergence sw=%v par=%v", seed, n, swErr, parErr)
			}
			if !block.FlagsEqual(swRes.Flags, parRes.Flags) {
				t.Fatalf("seed %d block %d: flags diverge\n  sw  %v\n  par %v",
					seed, n, swRes.Flags, parRes.Flags)
			}
			if string(swRes.CommitHash) != string(parRes.CommitHash) {
				t.Fatalf("seed %d block %d: commit hash diverges", seed, n)
			}
			if swRes.BlockValid != parRes.BlockValid {
				t.Fatalf("seed %d block %d: validity diverges", seed, n)
			}
		}
		if !statedb.SnapshotsEqual(sw.Store().Snapshot(), eng.Store().Snapshot()) {
			t.Fatalf("seed %d: final state diverged", seed)
		}
		eng.Close()
	}
}

// TestDifferentialBackends proves the backend-agnostic engine keeps Fabric
// semantics bit-identical across every statedb backend, sequential vs
// pipelined, with and without the prefetch stage: same flags, same commit
// hashes, same final state. The hybrid backend uses a tiny cache (constant
// evictions) plus a modeled host latency so the slow path really runs.
func TestDifferentialBackends(t *testing.T) {
	r := newRig(t)
	backends := []struct {
		name     string
		make     func() statedb.KVS
		prefetch bool
	}{
		{"store", func() statedb.KVS { return statedb.NewStore() }, false},
		{"store+prefetch", func() statedb.KVS { return statedb.NewStore() }, true},
		{"sharded", func() statedb.KVS { return statedb.NewShardedStore(8) }, false},
		{"sharded+prefetch", func() statedb.KVS { return statedb.NewShardedStore(8) }, true},
		{"hybrid", func() statedb.KVS {
			return statedb.NewHybridKVS(3, statedb.NewStore())
		}, false},
		{"hybrid+prefetch", func() statedb.KVS {
			h := statedb.NewHybridKVS(3, statedb.NewStore())
			h.SetHostReadLatency(50 * time.Microsecond)
			return h
		}, true},
	}
	for seed := int64(7); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		raws := buildRandomBlocks(t, r, rng, 6)

		// Reference: the sequential validator over the plain store.
		ref := validator.New(validator.Config{
			Workers: 3, Policies: r.pols, SkipLedger: true,
		}, statedb.NewStore(), nil)
		refResults := make([]*validator.Result, len(raws))
		for n, raw := range raws {
			res, err := ref.ValidateAndCommit(raw)
			if err != nil {
				t.Fatal(err)
			}
			refResults[n] = res
		}
		refState := ref.Store().Snapshot()

		for _, be := range backends {
			// Sequential validator over the backend.
			seq := validator.New(validator.Config{
				Workers: 3, Policies: r.pols, SkipLedger: true,
			}, be.make(), nil)
			for n, raw := range raws {
				res, err := seq.ValidateAndCommit(raw)
				if err != nil {
					t.Fatalf("%s seed %d block %d: %v", be.name, seed, n, err)
				}
				if !block.FlagsEqual(res.Flags, refResults[n].Flags) ||
					string(res.CommitHash) != string(refResults[n].CommitHash) {
					t.Fatalf("%s seed %d block %d: sequential verdict diverged", be.name, seed, n)
				}
			}
			if !statedb.SnapshotsEqual(refState, seq.Store().Snapshot()) {
				t.Fatalf("%s seed %d: sequential state diverged", be.name, seed)
			}

			// Pipelined engine over the backend, blocks genuinely in flight.
			eng := New(Config{
				Workers: 4, Policies: r.pols, SkipLedger: true,
				Prefetch: be.prefetch, PrefetchWorkers: 4,
			}, be.make(), nil)
			for _, raw := range raws {
				eng.Submit(raw)
			}
			for n := range raws {
				o := <-eng.Results()
				if o.Err != nil {
					t.Fatalf("%s seed %d block %d: %v", be.name, seed, n, o.Err)
				}
				if !block.FlagsEqual(o.Res.Flags, refResults[n].Flags) ||
					string(o.Res.CommitHash) != string(refResults[n].CommitHash) {
					t.Fatalf("%s seed %d block %d: pipelined verdict diverged", be.name, seed, n)
				}
			}
			if !statedb.SnapshotsEqual(refState, eng.Store().Snapshot()) {
				t.Fatalf("%s seed %d: pipelined state diverged", be.name, seed)
			}
			eng.Close()
		}
	}
}

// TestDifferentialPipelined feeds whole chains through Submit/Results so
// blocks genuinely overlap in the pipeline, then compares every outcome and
// the final state against the sequential validator.
func TestDifferentialPipelined(t *testing.T) {
	r := newRig(t)
	for seed := int64(100); seed <= 102; seed++ {
		rng := rand.New(rand.NewSource(seed))
		raws := buildRandomBlocks(t, r, rng, 8)

		sw := validator.New(validator.Config{
			Workers: 3, Policies: r.pols, SkipLedger: true,
		}, statedb.NewStore(), nil)
		swResults := make([]*validator.Result, len(raws))
		for n, raw := range raws {
			res, err := sw.ValidateAndCommit(raw)
			if err != nil {
				t.Fatal(err)
			}
			swResults[n] = res
		}

		eng := New(Config{Workers: 4, Policies: r.pols, SkipLedger: true},
			statedb.NewStore(), nil)
		for _, raw := range raws {
			eng.Submit(raw)
		}
		for n := range raws {
			o := <-eng.Results()
			if o.Err != nil {
				t.Fatalf("seed %d block %d: %v", seed, n, o.Err)
			}
			if o.Res.BlockNum != uint64(n) {
				t.Fatalf("seed %d: results out of order", seed)
			}
			if !block.FlagsEqual(o.Res.Flags, swResults[n].Flags) {
				t.Fatalf("seed %d block %d: flags diverge\n  sw  %v\n  par %v",
					seed, n, swResults[n].Flags, o.Res.Flags)
			}
			if string(o.Res.CommitHash) != string(swResults[n].CommitHash) {
				t.Fatalf("seed %d block %d: commit hash diverges", seed, n)
			}
		}
		if !statedb.SnapshotsEqual(sw.Store().Snapshot(), eng.Store().Snapshot()) {
			t.Fatalf("seed %d: final state diverged", seed)
		}
		eng.Close()
	}
}
