package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bmac/internal/block"
	"bmac/internal/fabcrypto"
	"bmac/internal/ledger"
	"bmac/internal/policy"
	"bmac/internal/statedb"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
)

// Config parameterizes the parallel commit engine.
type Config struct {
	// Workers is the goroutine budget per parallel stage (unmarshal, vscc,
	// mvcc/commit). Zero means GOMAXPROCS.
	Workers int
	// Policies maps chaincode name to its endorsement policy.
	Policies map[string]*policy.Policy
	// SkipLedger excludes the ledger commit, as the paper's metrics do.
	SkipLedger bool
	// Depth is the number of blocks allowed in flight between stages
	// (default 4). Higher values buy more inter-block overlap at the cost
	// of memory.
	Depth int
	// Prefetch enables the async read-set warm-up stage: distinct read-set
	// keys are read from the backend as soon as a block is unmarshalled, so
	// slow-backend misses (e.g. HybridKVS host reads) are absorbed while
	// the block is still in vscc. Verdicts are identical either way.
	Prefetch bool
	// PrefetchWorkers bounds the warm-up reader pool (default Workers).
	PrefetchWorkers int
	// SigCache memoizes signature verdicts across blocks and across every
	// path sharing the cache (see validator.Config.SigCache). Optional.
	SigCache *fabcrypto.SigCache
	// CertCache interns parsed X.509 identity certificates (see
	// validator.Config.CertCache). Optional.
	CertCache *fabcrypto.CertCache
	// BatchVerifyWorkers > 1 fans each transaction's endorsement checks
	// across a worker pool in the vscc stage.
	BatchVerifyWorkers int
	// ParseCache interns ParseTx results by payload hash (parse-once, see
	// validator.Config.ParseCache). Optional.
	ParseCache *validator.ParseCache
	// Metrics, when non-nil, mirrors each flushed block's Breakdown into
	// the telemetry registry's per-stage histograms. Nil (telemetry off)
	// costs one predicted branch per block.
	Metrics *telemetry.ValidatorMetrics
}

func (c *Config) verifyOpts() validator.VerifyOpts {
	return validator.VerifyOpts{
		SigCache:     c.SigCache,
		CertCache:    c.CertCache,
		BatchWorkers: c.BatchVerifyWorkers,
	}
}

// Result is the outcome of one block, identical in content to the
// sequential validator's result.
type Result = validator.Result

// Outcome pairs a block result with its error, preserving submission order
// on the Results channel. Err mirrors the sequential validator's error
// return (e.g. validator.ErrBlockInvalid for a bad orderer signature).
type Outcome struct {
	Res *Result
	Err error
}

// job carries one block through the stage pipeline.
type job struct {
	raw   []byte
	start time.Time

	b    *block.Block
	txs  []validator.ParsedTx
	res  *Result
	err  error
	bd   validator.Breakdown
	skip bool // no commit: unmarshal or block verification failed

	// warm tracks the block's async read-set prefetch; the mvcc stage waits
	// on it so a warm-up read and a committed write can't interleave
	// mid-check. nil when prefetch is off or the block never parsed.
	warm *sync.WaitGroup
}

// Engine is the parallel pipelined commit engine. Blocks submitted in order
// flow through four stages — unmarshal (plus async read-set prefetch),
// block-verify+vscc, dependency-scheduled mvcc, state/ledger flush — each
// stage a goroutine, so up to four blocks are processed concurrently, and
// the heavy stages additionally fan work out across Workers goroutines.
//
// The engine runs over any statedb.KVS backend; with cfg.Prefetch the
// warm-up readers hide a slow backend's read latency under vscc.
//
// Blocks must be submitted in increasing header-number order by a single
// goroutine (or via the synchronous ValidateAndCommit).
type Engine struct {
	cfg   Config
	cache *MVCache
	led   *ledger.Ledger
	pf    *prefetcher // nil when cfg.Prefetch is off

	in  chan *job
	out chan Outcome

	closeOnce sync.Once
	done      chan struct{}
}

// New creates and starts an engine over its own stage goroutines. led may
// be nil when cfg.SkipLedger is set.
func New(cfg Config, store statedb.KVS, led *ledger.Ledger) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Depth < 1 {
		cfg.Depth = 4
	}
	if cfg.PrefetchWorkers < 1 {
		cfg.PrefetchWorkers = cfg.Workers
	}
	e := &Engine{
		cfg:   cfg,
		cache: NewMVCache(store),
		led:   led,
		in:    make(chan *job, cfg.Depth),
		out:   make(chan Outcome, cfg.Depth),
		done:  make(chan struct{}),
	}
	if cfg.Prefetch {
		e.pf = newPrefetcher(store, cfg.PrefetchWorkers)
	}
	parsed := make(chan *job, cfg.Depth)
	verified := make(chan *job, cfg.Depth)
	decided := make(chan *job, cfg.Depth)
	go e.parseStage(e.in, parsed)
	go e.verifyStage(parsed, verified)
	go e.decideStage(verified, decided)
	go e.flushStage(decided)
	return e
}

// Store returns the backing state database.
func (e *Engine) Store() statedb.KVS { return e.cache.Store() }

// PrefetchedKeys reports the total number of warm-up reads issued by the
// prefetch stage (0 when prefetch is off).
func (e *Engine) PrefetchedKeys() int {
	if e.pf == nil {
		return 0
	}
	return e.pf.prefetched()
}

// Cache returns the multi-version state cache.
func (e *Engine) Cache() *MVCache { return e.cache }

// Submit feeds one marshaled block into the pipeline. Results arrive on
// Results() in submission order.
func (e *Engine) Submit(raw []byte) {
	e.in <- &job{raw: raw, start: time.Now()}
}

// Results delivers one Outcome per submitted block, in order.
func (e *Engine) Results() <-chan Outcome { return e.out }

// ValidateAndCommit runs one block synchronously through the pipeline:
// same contract as validator.Validator.ValidateAndCommit. Within a single
// block the engine still parallelizes unmarshal, vscc and the dependency-
// scheduled commit; inter-block overlap requires Submit.
func (e *Engine) ValidateAndCommit(raw []byte) (*Result, error) {
	e.Submit(raw)
	o := <-e.out
	return o.Res, o.Err
}

// Close drains the pipeline and releases the stage goroutines. The engine
// must not be used afterwards. The ledger, if any, is NOT closed (the
// caller owns it).
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		close(e.in)
		<-e.done
		if e.pf != nil {
			e.pf.close()
		}
	})
}

// --- stage 1: unmarshal ---

func (e *Engine) parseStage(in <-chan *job, next chan<- *job) {
	defer close(next)
	for j := range in {
		t := time.Now()
		b, err := block.Unmarshal(j.raw)
		if err != nil {
			j.err = err
			j.skip = true
			next <- j
			continue
		}
		j.b = b
		j.txs = make([]validator.ParsedTx, len(b.Envelopes))
		// Fan the per-transaction payload decoding out across workers —
		// the sequential validator decodes one transaction at a time. With
		// a ParseCache, payloads any sharing path already decoded are
		// served from the interning table instead of re-walked.
		var parseHits atomic.Int64
		parallelFor(len(j.txs), e.cfg.Workers, func(i int) {
			var hit bool
			j.txs[i], hit = e.cfg.ParseCache.ParseTx(b.Envelopes[i].PayloadBytes)
			if hit {
				parseHits.Add(1)
			}
		})
		j.bd.ParseCacheHits += int(parseHits.Load())
		j.bd.Unmarshal = time.Since(t)
		// Read sets are known now: kick off the async warm-up so backend
		// misses resolve while this block is in the vscc stage.
		if e.pf != nil {
			j.warm = e.pf.start(j.txs)
		}
		next <- j
	}
}

// --- stage 2: block verification + vscc ---

func (e *Engine) verifyStage(in <-chan *job, next chan<- *job) {
	defer close(next)
	for j := range in {
		if j.skip {
			next <- j
			continue
		}
		j.res = &Result{BlockNum: j.b.Header.Number, Flags: make([]byte, len(j.txs))}

		t := time.Now()
		blockErr := validator.VerifyOrdererOpts(j.b, e.cfg.verifyOpts(), &j.bd)
		j.bd.BlockVerify = time.Since(t)
		if blockErr != nil {
			for i := range j.res.Flags {
				j.res.Flags[i] = byte(block.InvalidOther)
			}
			j.err = fmt.Errorf("%w: %v", validator.ErrBlockInvalid, blockErr)
			j.skip = true
			next <- j
			continue
		}
		j.res.BlockValid = true

		t = time.Now()
		locals := make([]validator.Breakdown, len(j.txs))
		parallelFor(len(j.txs), e.cfg.Workers, func(i int) {
			j.res.Flags[i] = byte(validator.VSCCOneOpts(&j.b.Envelopes[i], &j.txs[i], e.cfg.Policies, e.cfg.verifyOpts(), &locals[i]))
		})
		for i := range locals {
			j.bd.ECDSATime += locals[i].ECDSATime
			j.bd.ECDSACount += locals[i].ECDSACount
			j.bd.SHA256Time += locals[i].SHA256Time
			j.bd.SHA256Count += locals[i].SHA256Count
			j.bd.SigCacheHits += locals[i].SigCacheHits
			j.bd.SigCacheTime += locals[i].SigCacheTime
		}
		j.bd.VerifyVSCC = time.Since(t)
		next <- j
	}
}

// --- stage 3: dependency-scheduled mvcc ---

func (e *Engine) decideStage(in <-chan *job, next chan<- *job) {
	defer close(next)
	for j := range in {
		if j.skip {
			next <- j
			continue
		}
		if j.warm != nil {
			// Residual stall only: with vscc ahead of us the warm-ups have
			// normally landed already. This is the latency the prefetch
			// failed to hide (reported so experiments can show the hiding).
			tWait := time.Now()
			j.warm.Wait()
			j.bd.PrefetchWait = time.Since(tWait)
		}
		t := time.Now()
		blockNum := j.b.Header.Number
		flags := j.res.Flags

		accs := make([]Access, len(j.txs))
		for i := range j.txs {
			if flags[i] == byte(block.Valid) {
				accs[i] = AccessOf(j.txs[i].RW)
			}
		}
		g := BuildGraph(accs)
		RunGraph(g, e.cfg.Workers, func(i int) {
			if flags[i] != byte(block.Valid) {
				return
			}
			rw := j.txs[i].RW
			for _, r := range rw.Reads {
				// An earlier valid transaction of this block wrote the key:
				// same verdict as the sequential writtenInBlock check. The
				// scheduler guarantees every such writer is already decided.
				if e.cache.WrittenBy(r.Key, blockNum, uint64(i)) {
					flags[i] = byte(block.MVCCReadConflict)
					return
				}
			}
			if !e.cache.MVCCCheck(rw.Reads, blockNum) {
				flags[i] = byte(block.MVCCReadConflict)
				return
			}
			// Decision is final: publish the writes so dependents (and the
			// next block's mvcc stage) observe them before the flush lands.
			ver := block.Version{BlockNum: blockNum, TxNum: uint64(i)}
			for _, w := range rw.Writes {
				e.cache.Put(w.Key, w.Value, ver)
			}
		})
		j.bd.MVCC = time.Since(t)
		j.b.Metadata.ValidationFlags = flags
		next <- j
	}
}

// --- stage 4: state database + ledger flush ---

func (e *Engine) flushStage(in <-chan *job) {
	defer close(e.done)
	defer close(e.out)
	for j := range in {
		if j.skip {
			if j.res != nil {
				j.bd.Total = time.Since(j.start)
				j.res.Breakdown = j.bd
			}
			e.out <- Outcome{Res: j.res, Err: j.err}
			continue
		}
		t := time.Now()
		store := e.cache.Store()
		for i := range j.txs {
			if j.res.Flags[i] != byte(block.Valid) {
				continue
			}
			ver := block.Version{BlockNum: j.b.Header.Number, TxNum: uint64(i)}
			store.WriteBatch(j.txs[i].RW.Writes, ver)
		}
		e.cache.Retire(j.b.Header.Number)
		j.bd.StateDB = j.bd.MVCC + time.Since(t)

		if !e.cfg.SkipLedger && e.led != nil {
			tLed := time.Now()
			ch, err := e.led.Commit(j.b)
			if err != nil {
				j.bd.Total = time.Since(j.start)
				e.out <- Outcome{Err: fmt.Errorf("pipeline ledger commit block %d: %w", j.b.Header.Number, err)}
				continue
			}
			j.res.CommitHash = ch
			j.bd.LedgerCommit = time.Since(tLed)
		} else {
			j.res.CommitHash = block.CommitHash(nil, j.b.Header.DataHash, j.res.Flags)
		}
		j.bd.Total = time.Since(j.start)
		j.res.Breakdown = j.bd
		e.cfg.Metrics.ObserveBlock(len(j.txs), j.bd.Unmarshal, j.bd.BlockVerify, j.bd.VerifyVSCC,
			j.bd.MVCC, j.bd.StateDB, j.bd.LedgerCommit, j.bd.PrefetchWait, j.bd.Total)
		e.out <- Outcome{Res: j.res}
	}
}

// parallelFor runs fn(0..n-1) across up to `workers` goroutines and waits.
func parallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
