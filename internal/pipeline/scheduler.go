package pipeline

import "sync"

// RunGraph executes decide(i) once for every transaction of g on up to
// `workers` goroutines, never running a transaction before all of its
// dependencies have been decided. Independent transactions run
// concurrently; a conflict-free block becomes a pure worker-pool sweep,
// while a fully serial block degrades gracefully to sequential execution.
//
// decide must be safe for concurrent invocation on distinct indices.
func RunGraph(g *Graph, workers int, decide func(i int)) {
	n := g.N()
	if n == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	// ready is buffered for every transaction so completions never block.
	ready := make(chan int, n)
	var (
		mu        sync.Mutex
		indegree  = make([]int, n)
		completed int
	)
	copy(indegree, g.indegree)
	for i := 0; i < n; i++ {
		if indegree[i] == 0 {
			ready <- i
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				decide(i)
				mu.Lock()
				for _, d := range g.Dependents(i) {
					indegree[d]--
					if indegree[d] == 0 {
						ready <- d
					}
				}
				completed++
				done := completed == n
				mu.Unlock()
				if done {
					close(ready) // releases every idle worker
				}
			}
		}()
	}
	wg.Wait()
}
