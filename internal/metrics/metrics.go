// Package metrics provides the measurement utilities used by the
// experiment harness: latency samples with percentiles/CDFs and throughput
// computation, matching how the paper reports block-level statistics
// through Caliper (§4.1).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Samples collects duration observations. All methods are safe for
// concurrent use: the load driver's client goroutines Add while the
// reporting goroutine reads a Summary, so the collection is mutex-guarded
// (sampling happens at block/report granularity, never on a per-signature
// hot path, so the lock is not a throughput concern).
type Samples struct {
	mu     sync.Mutex
	values []time.Duration // guarded by mu
	sorted bool            // guarded by mu
}

// Add records one observation.
func (s *Samples) Add(d time.Duration) {
	s.mu.Lock()
	s.values = append(s.values, d)
	s.sorted = false
	s.mu.Unlock()
}

// Len returns the number of observations.
func (s *Samples) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// ensureSorted must be called with s.mu held.
func (s *Samples) ensureSorted() {
	if !s.sorted {
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) by the ceil
// nearest-rank rule: the smallest value with at least ceil(p/100*n) samples
// at or below it. Truncation instead of ceil would over-index small sets —
// the P50 of two samples must be the smaller one, not the larger.
func (s *Samples) Percentile(p float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.percentileLocked(p)
}

func (s *Samples) percentileLocked(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	idx := int(math.Ceil(p/100*float64(len(s.values)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.values) {
		idx = len(s.values) - 1
	}
	return s.values[idx]
}

// Mean returns the arithmetic mean.
func (s *Samples) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meanLocked()
}

func (s *Samples) meanLocked() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.values {
		sum += v
	}
	return sum / time.Duration(len(s.values))
}

// Min and Max return the extremes.
func (s *Samples) Min() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation.
func (s *Samples) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLocked()
}

func (s *Samples) maxLocked() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// LatencySummary is the tail-latency digest reported by the load driver
// and the cluster experiment: count, mean and the p50/p95/p99 tail.
type LatencySummary struct {
	Count              int
	Mean               time.Duration
	P50, P95, P99, Max time.Duration
}

// Summary digests the samples into a LatencySummary. The digest is
// computed under one lock acquisition, so it is internally consistent even
// while other goroutines Add.
func (s *Samples) Summary() LatencySummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return LatencySummary{
		Count: len(s.values),
		Mean:  s.meanLocked(),
		P50:   s.percentileLocked(50),
		P95:   s.percentileLocked(95),
		P99:   s.percentileLocked(99),
		Max:   s.maxLocked(),
	}
}

// String renders the summary as one compact report line.
func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		l.Count, l.Mean.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Max.Round(time.Microsecond))
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// CDF returns the empirical CDF sampled at n evenly spaced fractions.
func (s *Samples) CDF(n int) []CDFPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 || n < 2 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(s.values))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: s.values[idx], Fraction: frac})
	}
	return out
}

// Throughput converts a transaction count over a total duration into tps.
func Throughput(txs int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(txs) / elapsed.Seconds()
}

// Table is a simple fixed-width text table used by the bench harness to
// print figure/table rows.
type Table struct {
	Header []string
	Rows   [][]string
	// Notes are free-form text blocks (possibly multi-line) rendered after
	// the rows — supplementary material like per-stage latency budgets that
	// does not fit the column grid.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a supplementary text block.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteByte('\n')
		b.WriteString(strings.TrimRight(n, "\n"))
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatTPS renders a throughput with thousands separators, e.g. "38,400".
func FormatTPS(tps float64) string {
	n := int64(tps + 0.5)
	if n < 1000 {
		return fmt.Sprintf("%d", n)
	}
	var parts []string
	for n > 0 {
		if n >= 1000 {
			parts = append([]string{fmt.Sprintf("%03d", n%1000)}, parts...)
		} else {
			parts = append([]string{fmt.Sprintf("%d", n%1000)}, parts...)
		}
		n /= 1000
	}
	return strings.Join(parts, ",")
}
