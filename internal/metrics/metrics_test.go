package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(95); got < 94*time.Millisecond || got > 97*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean())
	}
}

// TestPercentileNearestRank pins the ceil nearest-rank rule on small
// sample sets, where the old truncating index over-indexed (P50 of two
// samples returned the larger one).
func TestPercentileNearestRank(t *testing.T) {
	ms := func(vals ...int) *Samples {
		var s Samples
		for _, v := range vals {
			s.Add(time.Duration(v) * time.Millisecond)
		}
		return &s
	}
	cases := []struct {
		name string
		s    *Samples
		p    float64
		want time.Duration
	}{
		{"n1 p1", ms(10), 1, 10 * time.Millisecond},
		{"n1 p50", ms(10), 50, 10 * time.Millisecond},
		{"n1 p100", ms(10), 100, 10 * time.Millisecond},
		{"n2 p50 is the smaller sample", ms(10, 20), 50, 10 * time.Millisecond},
		{"n2 p51", ms(10, 20), 51, 20 * time.Millisecond},
		{"n2 p99", ms(10, 20), 99, 20 * time.Millisecond},
		{"n2 p100", ms(10, 20), 100, 20 * time.Millisecond},
		{"n3 p33 is the first sample", ms(10, 20, 30), 33, 10 * time.Millisecond},
		{"n3 p34", ms(10, 20, 30), 34, 20 * time.Millisecond},
		{"n3 p50 is the median", ms(10, 20, 30), 50, 20 * time.Millisecond},
		{"n3 p67", ms(10, 20, 30), 67, 30 * time.Millisecond},
		{"n3 p100", ms(10, 20, 30), 100, 30 * time.Millisecond},
		{"n4 p25", ms(10, 20, 30, 40), 25, 10 * time.Millisecond},
		{"n4 p50", ms(10, 20, 30, 40), 50, 20 * time.Millisecond},
		{"n100 p50", func() *Samples {
			var s Samples
			for i := 1; i <= 100; i++ {
				s.Add(time.Duration(i) * time.Millisecond)
			}
			return &s
		}(), 50, 50 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.s.Percentile(tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

// TestConcurrentAddSummary is the -race regression for the load driver's
// usage pattern: client goroutines Add while the reporter reads summaries.
func TestConcurrentAddSummary(t *testing.T) {
	var s Samples
	var adders, readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		adders.Add(1)
		go func(i int) {
			defer adders.Done()
			for j := 0; j < 500; j++ {
				s.Add(time.Duration(i*500+j) * time.Microsecond)
			}
		}(i)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := s.Summary()
			if sum.Count > 0 && (sum.P50 > sum.P99 || sum.P99 > sum.Max) {
				t.Error("inconsistent summary under concurrency")
				return
			}
			s.CDF(10)
			s.Percentile(95)
			s.Mean()
		}
	}()
	adders.Wait()
	close(stop)
	readers.Wait()
	if s.Len() != 2000 {
		t.Fatalf("len = %d, want 2000", s.Len())
	}
	sum := s.Summary()
	if sum.Count != 2000 || sum.Max != 1999*time.Microsecond {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestEmptySamples(t *testing.T) {
	var s Samples
	if s.Percentile(95) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty samples should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	var s Samples
	for i := 100; i >= 1; i-- { // insert unsorted
		s.Add(time.Duration(i) * time.Microsecond)
	}
	cdf := s.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("cdf not monotonic at %d", i)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Errorf("last fraction = %f", cdf[len(cdf)-1].Fraction)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("tps = %f", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("tps = %f", got)
	}
	if Throughput(5, 0) != 0 {
		t.Error("zero elapsed should give 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Header: []string{"block size", "sw tps", "bmac tps"}}
	tbl.AddRow("100", "3,900", "10,700")
	tbl.AddRow("250", "5,600", "38,400")
	out := tbl.String()
	if !strings.Contains(out, "block size") || !strings.Contains(out, "38,400") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("table lines = %d", len(lines))
	}
}

func TestFormatTPS(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{38400, "38,400"},
		{68900.4, "68,900"},
		{1234567, "1,234,567"},
	}
	for _, tt := range tests {
		if got := FormatTPS(tt.in); got != tt.want {
			t.Errorf("FormatTPS(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
