package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if got := s.Percentile(50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(95); got < 94*time.Millisecond || got > 97*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestEmptySamples(t *testing.T) {
	var s Samples
	if s.Percentile(95) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty samples should report zeros")
	}
	if s.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	var s Samples
	for i := 100; i >= 1; i-- { // insert unsorted
		s.Add(time.Duration(i) * time.Microsecond)
	}
	cdf := s.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("cdf not monotonic at %d", i)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Errorf("last fraction = %f", cdf[len(cdf)-1].Fraction)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("tps = %f", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("tps = %f", got)
	}
	if Throughput(5, 0) != 0 {
		t.Error("zero elapsed should give 0")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Header: []string{"block size", "sw tps", "bmac tps"}}
	tbl.AddRow("100", "3,900", "10,700")
	tbl.AddRow("250", "5,600", "38,400")
	out := tbl.String()
	if !strings.Contains(out, "block size") || !strings.Contains(out, "38,400") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("table lines = %d", len(lines))
	}
}

func TestFormatTPS(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{38400, "38,400"},
		{68900.4, "68,900"},
		{1234567, "1,234,567"},
	}
	for _, tt := range tests {
		if got := FormatTPS(tt.in); got != tt.want {
			t.Errorf("FormatTPS(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
