package bmac

import (
	"strings"
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Arch.TxValidators != 8 || cfg.Arch.VSCCEngines != 2 {
		t.Errorf("default arch = %+v", cfg.Arch)
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	cfg, err := ParseConfig([]byte(`
channel: ch9
orgs:
  - name: Org1
    peers: 1
    endorsers: 1
    clients: 1
    orderers: 1
chaincodes:
  - name: smallbank
    policy: "1of1"
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channel != "ch9" {
		t.Errorf("channel = %q", cfg.Channel)
	}
}

// TestTestbedHybridBackendCrossCheck runs the full network with the
// parallel peer on a small hybrid hardware/host database (modeled host
// latency, prefetch on) and cross-checks every block against the sequential
// and BMac peers: the §5 backend must be invisible to validation results.
func TestTestbedHybridBackendCrossCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StateDB = StateDBSpec{Backend: "hybrid", Capacity: 16, HostReadLatencyUS: 20}
	cfg.Pipeline.Prefetch = true
	tb, err := NewTestbed(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	w := SmallbankWorkload{Accounts: 64, Skew: 1.2}
	if err := tb.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	driver, err := tb.NewClient(w, 42)
	if err != nil {
		t.Fatal(err)
	}
	const txs = 30
	if err := driver.Run(txs); err != nil {
		t.Fatal(err)
	}
	committed := 0
	for committed < txs {
		outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outcomes {
			committed += o.TxCount
			if !o.Match {
				t.Fatalf("block %d diverged across validation paths (par match %v, hw match %v)",
					o.BlockNum, o.ParMatch, o.HWMatch)
			}
		}
	}
	summary := tb.ParallelBackendSummary()
	if !strings.HasPrefix(summary, "hybrid") {
		t.Errorf("backend summary = %q, want hybrid", summary)
	}
}

// TestTestbedCloseIdempotent: explicit Close for error checking plus a
// deferred Close is a common pattern; the second call must be a no-op
// returning the first result, not a double-close panic.
func TestTestbedCloseIdempotent(t *testing.T) {
	tb, err := NewTestbed(DefaultConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := tb.Close()
	if second := tb.Close(); second != first {
		t.Errorf("second Close = %v, first = %v", second, first)
	}
}

func TestExperimentNamesHaveTitles(t *testing.T) {
	names := ExperimentNames()
	if len(names) < 10 {
		t.Fatalf("only %d experiments", len(names))
	}
	for _, n := range names {
		if ExperimentTitle(n) == "" {
			t.Errorf("experiment %q has no title", n)
		}
	}
}

func TestRunExperimentQuick(t *testing.T) {
	tbl, err := RunExperiment("table1", ExperimentOptions{Quick: true, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", ExperimentOptions{Quick: true}); err == nil {
		t.Error("expected error")
	}
}

// TestTestbedSmallbankEndToEnd drives the full public API: build a network
// from the default config, bootstrap smallbank, submit transactions through
// the client driver, and verify every block matched between the software
// and BMac validation paths.
func TestTestbedSmallbankEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arch.MaxBlockTxs = 10 // small blocks -> several blocks in the run
	tb, err := NewTestbed(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	w := SmallbankWorkload{Accounts: 40}
	if err := tb.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	driver, err := tb.NewClient(w, 7)
	if err != nil {
		t.Fatal(err)
	}
	const txs = 30
	if err := driver.Run(txs); err != nil {
		t.Fatal(err)
	}
	// The batch timeout may split the run into 3 or 4 blocks; await by
	// transaction count.
	total := 0
	for total < txs {
		outcomes, err := tb.AwaitBlocks(1, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		o := outcomes[0]
		if !o.Match {
			t.Errorf("block %d: sw/hw mismatch\n  sw flags: %v\n  hw flags: %v",
				o.BlockNum, o.SW.Flags, o.HW.Flags)
		}
		total += o.TxCount
	}
	if total != txs {
		t.Errorf("committed %d txs, want %d", total, txs)
	}
	if tb.SWPeer.Ledger.Height() != tb.BMacPeer.Ledger.Height() {
		t.Error("ledger heights diverge")
	}
}

// TestTestbedDRM runs the drm benchmark through the same path.
func TestTestbedDRM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chaincodes = []ChaincodeSpec{{Name: "drm", Policy: "2of2"}}
	cfg.Arch.MaxBlockTxs = 8
	tb, err := NewTestbed(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	w := DRMWorkload{Assets: 20}
	if err := tb.Bootstrap(w); err != nil {
		t.Fatal(err)
	}
	driver, err := tb.NewClient(w, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := driver.Run(16); err != nil {
		t.Fatal(err)
	}
	total := 0
	for total < 16 {
		outcomes, err := tb.AwaitBlocks(1, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !outcomes[0].Match {
			t.Error("drm block mismatch between sw and hw paths")
		}
		total += outcomes[0].TxCount
	}
}

func TestNewTestbedInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chaincodes = nil
	if _, err := NewTestbed(cfg, t.TempDir()); err == nil {
		t.Error("expected error for config without chaincodes")
	}

	cfg2 := DefaultConfig()
	cfg2.Orgs[0].Endorsers = 0
	cfg2.Orgs[1].Endorsers = 0
	if _, err := NewTestbed(cfg2, t.TempDir()); err == nil {
		t.Error("expected error for config without endorsers")
	}
}

func TestNewTestbedNeedsOrdererAndClient(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Orgs[0].Orderers = 0
	if _, err := NewTestbed(cfg, t.TempDir()); err == nil {
		t.Error("expected error when the first org has no orderer")
	}

	cfg2 := DefaultConfig()
	cfg2.Orgs[0].Clients = 0
	tb, err := NewTestbed(cfg2, t.TempDir())
	if err != nil {
		t.Fatal(err) // network builds fine...
	}
	defer tb.Close()
	if _, err := tb.NewClient(SmallbankWorkload{Accounts: 1}, 1); err == nil {
		t.Error("expected error when the first org has no client identity")
	}
}

func TestSimulateArchitectureErrors(t *testing.T) {
	if _, err := SimulateArchitecture(8, 2, SimWorkload{Policy: "bogus", BlockSize: 10}); err == nil {
		t.Error("expected policy parse error")
	}
	if _, err := SimulateArchitecture(8, 2, SimWorkload{Policy: "2of2", BlockSize: 0}); err == nil {
		t.Error("expected block size error")
	}
}

func TestSimulateArchitectureShortCircuit(t *testing.T) {
	res, err := SimulateArchitecture(8, 2, SimWorkload{Policy: "2of3", BlockSize: 100, Reads: 2, Writes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2of3 with all-valid endorsements: one per tx skipped.
	if res.EndsSkipped != 100 {
		t.Errorf("skipped = %d, want 100", res.EndsSkipped)
	}
	if res.Throughput <= 0 || !res.FitsU250 {
		t.Errorf("result = %+v", res)
	}
}
