package bmac

// One testing.B benchmark per table and figure of the paper's evaluation
// (§4.3). Each bench exercises the measured code path for its experiment
// and reports the figure's headline quantity as a custom metric; the full
// row-by-row reproduction (the exact series the paper plots) is printed by
// `go run ./cmd/bmacbench`.

import (
	"testing"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/experiments"
	"bmac/internal/hwsim"
	"bmac/internal/identity"
	"bmac/internal/policy"
	"bmac/internal/policy/policytest"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkFigure3 measures the software validator's profile on one block:
// the ecdsa_verify share of busy time is the figure's headline (paper ~40%).
func BenchmarkFigure3(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.BlockSpec{Txs: 100, Endorsements: 2, Reads: 2, Writes: 2}
	if _, err := env.MeasureSW(spec, "2of2", 8, 1); err != nil {
		b.Fatal(err) // warm the block cache
	}
	b.ResetTimer()
	var ecdsaFrac float64
	for i := 0; i < b.N; i++ {
		bd, err := env.MeasureSW(spec, "2of2", 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		busy := bd.ECDSATime + bd.SHA256Time + bd.Unmarshal + bd.StateDB
		ecdsaFrac = float64(bd.ECDSATime) / float64(busy)
	}
	b.ReportMetric(ecdsaFrac*100, "ecdsa_%")
}

// BenchmarkFigure9aBandwidth measures BMac protocol encoding and reports
// the compression ratio vs the marshaled (Gossip) block (paper 3.4-5.3x).
func BenchmarkFigure9aBandwidth(b *testing.B) {
	env := benchEnv(b)
	blk, err := env.MakeBlock(experiments.BlockSpec{Txs: 150, Endorsements: 2, Reads: 2, Writes: 2})
	if err != nil {
		b.Fatal(err)
	}
	gossipBytes := len(block.Marshal(blk))
	sender := bmacproto.NewSender(identity.NewCache(), nil)
	if err := sender.RegisterNetwork(env.Net); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(gossipBytes))
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, stats, err := sender.EncodeBlock(blk)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(gossipBytes) / float64(stats.Bytes)
	}
	b.ReportMetric(ratio, "compression_x")
}

// BenchmarkFigure9bTransmission samples the 1 Gbps link model and reports
// the p95 latency reduction (paper ~30%).
func BenchmarkFigure9bTransmission(b *testing.B) {
	link := hwsim.NewLink(7)
	var reduction float64
	for i := 0; i < b.N; i++ {
		var g, m time.Duration
		for j := 0; j < 100; j++ {
			if t := link.GossipTime(600_000); t > g {
				g = t
			}
			if t := link.BMacTime(150_000, 152); t > m {
				m = t
			}
		}
		reduction = 1 - float64(m)/float64(g)
	}
	b.ReportMetric(reduction*100, "p_reduction_%")
}

// BenchmarkFigure10Breakdown measures one software validation pass of the
// Figure 10 configuration (block 200, 8 workers) and reports the overall
// speedup vs the simulated BMac pipeline (paper 4.4x).
func BenchmarkFigure10Breakdown(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.BlockSpec{Txs: 200, Endorsements: 2, Reads: 2, Writes: 2}
	hw := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2},
		policy.Compile(policytest.MustParse("2of2")),
		hwsim.UniformTxProfile(spec.Txs, 2, 2, 2))
	if _, err := env.MeasureSW(spec, "2of2", 8, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		sw, err := env.MeasureSW(spec, "2of2", 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(sw.VerifyVSCC+sw.StateDB+sw.Unmarshal) / float64(hw.BlockLatency())
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkFigure11 sweeps the smallbank throughput experiment's axes as
// sub-benchmarks, reporting sw (measured) and bmac (simulated) tps.
func BenchmarkFigure11(b *testing.B) {
	env := benchEnv(b)
	for _, bs := range []int{50, 250} {
		for _, par := range []int{4, 16} {
			spec := experiments.BlockSpec{Txs: bs, Endorsements: 2, Reads: 2, Writes: 2}
			b.Run(benchName("block", bs, "par", par), func(b *testing.B) {
				if _, err := env.MeasureSW(spec, "2of2", par, 1); err != nil {
					b.Fatal(err)
				}
				hw := hwsim.Simulate(hwsim.Config{TxValidators: par, VSCCEngines: 2},
					policy.Compile(policytest.MustParse("2of2")),
					hwsim.UniformTxProfile(bs, 2, 2, 2))
				b.ResetTimer()
				var swTPS float64
				for i := 0; i < b.N; i++ {
					bd, err := env.MeasureSW(spec, "2of2", par, 1)
					if err != nil {
						b.Fatal(err)
					}
					swTPS = float64(bs) / bd.Total.Seconds()
				}
				b.ReportMetric(swTPS, "sw_tps")
				b.ReportMetric(hw.Throughput(bs), "bmac_tps")
			})
		}
	}
}

// BenchmarkFigure12aPolicies sweeps the endorsement policies.
func BenchmarkFigure12aPolicies(b *testing.B) {
	env := benchEnv(b)
	cases := []struct {
		name string
		pol  string
		ends int
	}{
		{"1of1", "1of1", 1}, {"2of2", "2of2", 2},
		{"2of3", "2of3", 3}, {"3of3", "3of3", 3},
	}
	for _, pc := range cases {
		pc := pc
		b.Run(pc.name, func(b *testing.B) {
			spec := experiments.BlockSpec{Txs: 150, Endorsements: pc.ends, Reads: 2, Writes: 2}
			if _, err := env.MeasureSW(spec, pc.pol, 8, 1); err != nil {
				b.Fatal(err)
			}
			hw := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2},
				policy.Compile(policytest.MustParse(pc.pol)),
				hwsim.UniformTxProfile(150, pc.ends, 2, 2))
			b.ResetTimer()
			var swTPS float64
			for i := 0; i < b.N; i++ {
				bd, err := env.MeasureSW(spec, pc.pol, 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				swTPS = 150 / bd.Total.Seconds()
			}
			b.ReportMetric(swTPS, "sw_tps")
			b.ReportMetric(hw.Throughput(150), "bmac_tps")
		})
	}
}

// BenchmarkFigure12bArchitectures compares 8x2 and 5x3 (simulator).
func BenchmarkFigure12bArchitectures(b *testing.B) {
	for _, arch := range []struct{ n, e int }{{8, 2}, {5, 3}} {
		arch := arch
		b.Run(benchName("arch", arch.n, "x", arch.e), func(b *testing.B) {
			circ3 := policy.Compile(policytest.MustParse("3of3"))
			var tps float64
			for i := 0; i < b.N; i++ {
				t := hwsim.Simulate(hwsim.Config{TxValidators: arch.n, VSCCEngines: arch.e},
					circ3, hwsim.UniformTxProfile(150, 3, 2, 2))
				tps = t.Throughput(150)
			}
			b.ReportMetric(tps, "bmac_tps_3of3")
		})
	}
}

// BenchmarkFigure12cDBRequests sweeps the database request counts.
func BenchmarkFigure12cDBRequests(b *testing.B) {
	env := benchEnv(b)
	for _, rw := range []int{2, 9} {
		rw := rw
		b.Run(benchName("rw", rw, "", 0), func(b *testing.B) {
			spec := experiments.BlockSpec{Txs: 150, Endorsements: 2, Reads: rw, Writes: rw}
			if _, err := env.MeasureSW(spec, "2of2", 8, 1); err != nil {
				b.Fatal(err)
			}
			hw := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2},
				policy.Compile(policytest.MustParse("2of2")),
				hwsim.UniformTxProfile(150, 2, rw, rw))
			b.ResetTimer()
			var swTPS float64
			for i := 0; i < b.N; i++ {
				bd, err := env.MeasureSW(spec, "2of2", 8, 1)
				if err != nil {
					b.Fatal(err)
				}
				swTPS = 150 / bd.Total.Seconds()
			}
			b.ReportMetric(swTPS, "sw_tps")
			b.ReportMetric(hw.Throughput(150), "bmac_tps")
		})
	}
}

// BenchmarkFigure13DRM measures the drm-shaped workload (1r/1w).
func BenchmarkFigure13DRM(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.BlockSpec{Txs: 150, Endorsements: 2, Reads: 1, Writes: 1}
	if _, err := env.MeasureSW(spec, "2of2", 8, 1); err != nil {
		b.Fatal(err)
	}
	hw := hwsim.Simulate(hwsim.Config{TxValidators: 8, VSCCEngines: 2},
		policy.Compile(policytest.MustParse("2of2")),
		hwsim.UniformTxProfile(150, 2, 1, 1))
	b.ResetTimer()
	var swTPS float64
	for i := 0; i < b.N; i++ {
		bd, err := env.MeasureSW(spec, "2of2", 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		swTPS = 150 / bd.Total.Seconds()
	}
	b.ReportMetric(swTPS, "sw_tps")
	b.ReportMetric(hw.Throughput(150), "bmac_tps")
}

// BenchmarkTable1Resources evaluates the resource model (reports 16x2 LUT%).
func BenchmarkTable1Resources(b *testing.B) {
	var lut float64
	for i := 0; i < b.N; i++ {
		for _, arch := range [][2]int{{4, 2}, {5, 3}, {8, 2}, {12, 2}, {16, 2}} {
			u := hwsim.Resources(arch[0], arch[1])
			lut = u.LUTPct
		}
	}
	b.ReportMetric(lut, "lut_16x2_%")
}

// BenchmarkPipelineSpeedup measures the parallel pipelined commit engine
// (internal/pipeline) against the sequential software validator on a chain
// of low-conflict blocks — the repo's first step past the paper's software
// baseline. The headline metric is wall-clock speedup; it exceeds 1.0x on
// multi-core hosts and degrades gracefully to ~1x on a single core.
func BenchmarkPipelineSpeedup(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.ConflictChainSpec{
		Blocks: 4, Txs: 100, Endorsements: 2, Reads: 2, Writes: 2,
		HotKeys: 8, HotProb: 0, Seed: 1,
	}
	if _, err := env.MeasurePipeline(spec, "2of2", 0, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		cmp, err := env.MeasurePipeline(spec, "2of2", 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cmp.Speedup()
	}
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkHybridPrefetch measures the §5 hybrid hardware/host database
// under the pipelined engine at smallbank Zipf skew 1.0: throughput with a
// modeled host-read latency, prefetch off vs on. The headline metrics are
// the hybrid hit rate and the fraction of latency-lost throughput the
// async read-set prefetch recovers by hiding host reads under vscc.
func BenchmarkHybridPrefetch(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.HybridSpec{
		Blocks: 8, Txs: 64, Endorsements: 2,
		Accounts: 1024, ReadsPerTx: 3,
		Skew:            1.0,
		Capacity:        512,
		HostLatency:     400 * time.Microsecond,
		Workers:         0, // GOMAXPROCS
		PrefetchWorkers: 16,
		Seed:            1,
	}
	b.ResetTimer()
	var pt experiments.HybridPoint
	for i := 0; i < b.N; i++ {
		var err error
		pt, err = env.MeasureHybrid(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.PrefetchTPS, "prefetch_tps")
	b.ReportMetric(pt.NoPrefetchTPS, "no_prefetch_tps")
	b.ReportMetric(pt.HitRate*100, "hit_%")
	b.ReportMetric(pt.Recovered()*100, "recovered_%")
}

// BenchmarkHeadline reports the paper's headline speedup: simulated BMac
// peak vs measured 16-worker software validation (paper ~12x).
func BenchmarkHeadline(b *testing.B) {
	env := benchEnv(b)
	spec := experiments.BlockSpec{Txs: 250, Endorsements: 2, Reads: 2, Writes: 2}
	if _, err := env.MeasureSW(spec, "2of2", 16, 1); err != nil {
		b.Fatal(err)
	}
	hw := hwsim.Simulate(hwsim.Config{TxValidators: 46, VSCCEngines: 2},
		policy.Compile(policytest.MustParse("2of2")),
		hwsim.UniformTxProfile(250, 2, 2, 2))
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		sw, err := env.MeasureSW(spec, "2of2", 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		speedup = hw.Throughput(250) / (250 / sw.Total.Seconds())
	}
	b.ReportMetric(speedup, "speedup_x")
	b.ReportMetric(hw.Throughput(250), "bmac_peak_tps")
}

func benchName(k1 string, v1 int, k2 string, v2 int) string {
	name := k1 + "=" + itoa(v1)
	if k2 != "" {
		name += "/" + k2 + "=" + itoa(v2)
	}
	return name
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
