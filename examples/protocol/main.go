// Protocol: a tour of the BMac wire protocol (paper §3.2) over real UDP
// loopback. The example builds a block, shows how DataRemover strips the
// repeated identity certificates (the 3.4-5.3x bandwidth saving of Figure
// 9a), streams the self-contained packets to a hardware-style receiver,
// and demonstrates that a lost packet stalls only its own block until the
// packet is redelivered.
//
// This example reaches below the public façade into the protocol layer
// itself; the quickstart/banking/drm examples show the high-level API.
package main

import (
	"fmt"
	"log"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/identity"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 2-org network: client, orderer, two endorser peers.
	net := identity.NewNetwork()
	for _, org := range []string{"Org1", "Org2"} {
		if _, err := net.AddOrg(org); err != nil {
			return err
		}
	}
	client, err := net.NewIdentity("Org1", identity.RoleClient)
	if err != nil {
		return err
	}
	ordID, err := net.NewIdentity("Org1", identity.RoleOrderer)
	if err != nil {
		return err
	}
	p1, err := net.NewIdentity("Org1", identity.RolePeer)
	if err != nil {
		return err
	}
	p2, err := net.NewIdentity("Org2", identity.RolePeer)
	if err != nil {
		return err
	}

	// A 50-transaction block with 2 endorsements per transaction.
	envs := make([]block.Envelope, 0, 50)
	for i := 0; i < 50; i++ {
		env, err := block.NewEndorsedEnvelope(block.TxSpec{
			Creator:   client,
			Chaincode: "smallbank",
			Channel:   "ch1",
			RWSet: block.RWSet{
				Writes: []block.KVWrite{{Key: fmt.Sprintf("k%d", i), Value: []byte("v")}},
			},
			Endorsers: []*identity.Identity{p1, p2},
		})
		if err != nil {
			return err
		}
		envs = append(envs, *env)
	}
	blk, err := block.NewBlock(0, nil, envs, ordID)
	if err != nil {
		return err
	}

	// Hardware-style receiver behind a real UDP socket.
	cache := identity.NewCache()
	bufs := bmacproto.NewBuffers()
	recv := bmacproto.NewReceiver(cache, bufs)
	listener, err := bmacproto.ListenUDP("127.0.0.1:0", recv)
	if err != nil {
		return err
	}
	defer listener.Close()
	// bmaclint:allow goroleak (drain exits when the receiver's FIFOs are closed)
	go drain(bufs) // a stand-in for the block processor

	sink, err := bmacproto.DialUDP(listener.Addr())
	if err != nil {
		return err
	}
	defer sink.Close()
	sender := bmacproto.NewSender(identity.NewCache(), sink)
	if err := sender.RegisterNetwork(net); err != nil {
		return err
	}

	// 1. Bandwidth: gossip vs BMac protocol.
	gossipBytes := len(block.Marshal(blk))
	packets, stats, err := sender.EncodeBlock(blk)
	if err != nil {
		return err
	}
	fmt.Printf("block with %d txs, 2 endorsements each:\n", len(envs))
	fmt.Printf("  gossip (marshaled protobuf): %6.1f KB\n", float64(gossipBytes)/1024)
	fmt.Printf("  bmac protocol (%3d packets): %6.1f KB  (%.1fx smaller, %d KB of identities removed)\n",
		stats.Packets, float64(stats.Bytes)/1024,
		float64(gossipBytes)/float64(stats.Bytes), stats.Removed/1024)

	// 2. Stream over UDP; the receiver reconstructs and verifies.
	if _, err := sender.SendBlock(blk); err != nil {
		return err
	}
	assembled := <-recv.Blocks()
	fmt.Printf("\nreceived block %d over UDP: %d envelopes, data hash ok: %v\n",
		assembled.Block.Header.Number, len(assembled.Block.Envelopes), assembled.DataHashOK)

	// 3. Loss: drop one tx packet of block 1; the block stalls, then a
	//    retransmission completes it (the Go-Back-N hook of §5).
	blk.Header.Number = 1
	packets, _, err = sender.EncodeBlock(blk)
	if err != nil {
		return err
	}
	lost := packets[10]
	for i, p := range packets {
		if i == 10 {
			continue // drop tx section 9
		}
		if err := sink.SendPacket(p); err != nil {
			return err
		}
	}
	awaitPending(recv, 1)
	fmt.Printf("\ndropped one tx packet: block 1 stalled (%d partial block in reassembly)\n",
		recv.PendingBlocks())
	if err := sink.SendPacket(lost); err != nil {
		return err
	}
	assembled = <-recv.Blocks()
	fmt.Printf("retransmitted it: block %d completed, data hash ok: %v\n",
		assembled.Block.Header.Number, assembled.DataHashOK)
	return nil
}

// drain consumes the block-processor FIFOs so the receiver never blocks.
func drain(bufs *bmacproto.Buffers) {
	go func() { // bmaclint:allow goroleak (Pop reports !ok once the FIFO is closed and drained)
		for {
			if _, ok := bufs.Block.Pop(); !ok {
				return
			}
		}
	}()
	go func() { // bmaclint:allow goroleak (Pop reports !ok once the FIFO is closed and drained)
		for {
			if _, ok := bufs.Ends.Pop(); !ok {
				return
			}
		}
	}()
	go func() { // bmaclint:allow goroleak (Pop reports !ok once the FIFO is closed and drained)
		for {
			if _, ok := bufs.Rdset.Pop(); !ok {
				return
			}
		}
	}()
	go func() { // bmaclint:allow goroleak (Pop reports !ok once the FIFO is closed and drained)
		for {
			if _, ok := bufs.Wrset.Pop(); !ok {
				return
			}
		}
	}()
	for {
		if _, ok := bufs.Tx.Pop(); !ok {
			return
		}
	}
}

// awaitPending spins until the receiver reports n stalled blocks.
func awaitPending(recv *bmacproto.Receiver, n int) {
	for recv.PendingBlocks() < n {
	}
}
