// Quickstart: stand up the paper's default network (two organizations,
// smallbank with a 2-outof-2 endorsement policy, an 8x2 BMac architecture),
// submit a handful of transactions, and watch every block validate
// identically on the software and hardware paths.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bmac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bmac-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. A network from the default configuration (paper Figure 8).
	tb, err := bmac.NewTestbed(bmac.DefaultConfig(), dir)
	if err != nil {
		return err
	}
	defer tb.Close()

	// 2. Bootstrap the smallbank world state and create a client.
	workload := bmac.SmallbankWorkload{Accounts: 50}
	if err := tb.Bootstrap(workload); err != nil {
		return err
	}
	driver, err := tb.NewClient(workload, 1)
	if err != nil {
		return err
	}

	// 3. Submit 60 transactions; the orderer cuts them into blocks, the
	//    BMac protocol carries them to the hardware pipeline, and Gossip
	//    carries them to the software validator.
	if err := driver.Run(60); err != nil {
		return err
	}

	// 4. Every block is validated twice and cross-checked.
	committed := 0
	for committed < 60 {
		outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
		if err != nil {
			return err
		}
		o := outcomes[0]
		committed += o.TxCount
		fmt.Printf("block %d: %d txs, sw/hw results match: %v\n",
			o.BlockNum, o.TxCount, o.Match)
	}
	fmt.Printf("\ncommitted %d transactions; ledger height %d on both peers\n",
		committed, tb.SWPeer.Ledger.Height())
	return nil
}
