// DRM: the digital-rights-management scenario from the paper's second
// benchmark — registering, licensing and transferring digital assets on a
// two-org network. The example also demonstrates adaptability (§3.3): the
// endorsement policy is compiled into the hardware configuration, so the
// same application runs under "Org1 & Org2" or a 1-of-2 policy by changing
// one line of YAML.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bmac"
)

const configYAML = `
channel: media
orgs:
  - name: Org1       # the studio
    peers: 1
    endorsers: 1
    clients: 1
    orderers: 1
  - name: Org2       # the distributor
    peers: 1
    endorsers: 1
chaincodes:
  - name: drm
    policy: "Org1 & Org2"   # both parties must endorse rights changes
architecture:
  tx_validators: 8
  vscc_engines: 2
  db_capacity: 8192
  max_block_txs: 25
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bmac-drm-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg, err := bmac.ParseConfig([]byte(configYAML))
	if err != nil {
		return err
	}
	tb, err := bmac.NewTestbed(cfg, dir)
	if err != nil {
		return err
	}
	defer tb.Close()

	workload := bmac.DRMWorkload{Assets: 60}
	if err := tb.Bootstrap(workload); err != nil {
		return err
	}
	driver, err := tb.NewClient(workload, 99)
	if err != nil {
		return err
	}

	const txs = 75
	fmt.Printf("managing %d digital-asset operations (register/transfer/license/query)...\n", txs)
	start := time.Now()
	if err := driver.Run(txs); err != nil {
		return err
	}
	committed := 0
	for committed < txs {
		outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
		if err != nil {
			return err
		}
		o := outcomes[0]
		if !o.Match {
			return fmt.Errorf("block %d diverged between peers", o.BlockNum)
		}
		committed += o.TxCount
		fmt.Printf("block %2d: %2d asset txs committed, hardware verified %d endorsements\n",
			o.BlockNum, o.TxCount, o.HW.HWStats.EndsVerified)
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%d asset operations in %v end-to-end\n", committed, elapsed.Round(time.Millisecond))

	// Adaptability: the same application under different hardware sizing.
	fmt.Println("\nthroughput of this drm deployment across architectures (simulator):")
	for _, n := range []int{4, 8, 16} {
		res, err := bmac.SimulateArchitecture(n, 2,
			bmac.SimWorkload{Policy: "Org1 & Org2", BlockSize: 150, Reads: 1, Writes: 1})
		if err != nil {
			return err
		}
		fmt.Printf("  %-5s %9.0f tps  (block latency %v)\n", res.Arch, res.Throughput, res.BlockLatency)
	}
	return nil
}
