// Banking: the smallbank scenario the paper's introduction motivates — a
// payments network that needs Visa-scale validation throughput. A four-org
// consortium runs smallbank under a 2-outof-3 policy; the example drives
// live traffic through the testbed, then uses the calibrated simulator to
// size the FPGA architecture that meets a 65,000 tps peak-load target
// (the Visa number from §1).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bmac"
)

const targetTPS = 65000 // Visa peak workload, paper §1

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "bmac-banking-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A 3-org consortium; payments need 2 of 3 banks to endorse.
	cfg := bmac.DefaultConfig()
	cfg.Orgs = []bmac.OrgSpec{
		{Name: "Org1", Peers: 1, Endorsers: 1, Clients: 1, Orderers: 1},
		{Name: "Org2", Peers: 1, Endorsers: 1},
		{Name: "Org3", Peers: 1, Endorsers: 1},
	}
	cfg.Chaincodes = []bmac.ChaincodeSpec{{Name: "smallbank", Policy: "2of3"}}
	cfg.Arch.MaxBlockTxs = 50

	tb, err := bmac.NewTestbed(cfg, dir)
	if err != nil {
		return err
	}
	defer tb.Close()

	workload := bmac.SmallbankWorkload{Accounts: 200}
	if err := tb.Bootstrap(workload); err != nil {
		return err
	}
	driver, err := tb.NewClient(workload, 2026)
	if err != nil {
		return err
	}

	const txs = 150
	fmt.Printf("driving %d smallbank payments through the 3-bank consortium...\n", txs)
	if err := driver.Run(txs); err != nil {
		return err
	}
	committed, valid := 0, 0
	var endsVerified, endsSkipped int
	for committed < txs {
		outcomes, err := tb.AwaitBlocks(1, 30*time.Second)
		if err != nil {
			return err
		}
		o := outcomes[0]
		if !o.Match {
			return fmt.Errorf("block %d: sw/hw validation diverged", o.BlockNum)
		}
		committed += o.TxCount
		for _, f := range o.HW.Flags {
			if f == 0 {
				valid++
			}
		}
		endsVerified += o.HW.HWStats.EndsVerified
		endsSkipped += o.HW.HWStats.EndsSkipped
	}
	fmt.Printf("committed %d txs (%d valid); short-circuit evaluation skipped %d of %d endorsements\n\n",
		committed, valid, endsSkipped, endsVerified+endsSkipped)

	// Size the hardware for the Visa target using the paper's simulator.
	fmt.Printf("sizing an architecture for %d tps (2of3 policy, 250-tx blocks):\n", targetTPS)
	w := bmac.SimWorkload{Policy: "2of3", BlockSize: 250, Reads: 2, Writes: 2}
	for n := 8; n <= 64; n += 4 {
		res, err := bmac.SimulateArchitecture(n, 2, w)
		if err != nil {
			return err
		}
		marker := ""
		if res.Throughput >= targetTPS {
			marker = "  <-- meets Visa peak load"
		}
		fmt.Printf("  %-5s %9.0f tps  LUT %.1f%%  fits U250: %-5v%s\n",
			res.Arch, res.Throughput, res.LUTPct, res.FitsU250, marker)
		if res.Throughput >= targetTPS {
			break
		}
	}
	return nil
}
