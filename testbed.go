package bmac

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bmac/internal/block"
	"bmac/internal/bmacproto"
	"bmac/internal/chaincode"
	"bmac/internal/client"
	"bmac/internal/delivery"
	"bmac/internal/endorser"
	"bmac/internal/identity"
	"bmac/internal/orderer"
	"bmac/internal/peer"
	"bmac/internal/raft"
	"bmac/internal/statedb"
	"bmac/internal/wire"
)

// Workload generates benchmark transactions; the concrete workloads mirror
// the paper's benchmarks.
type Workload = client.Workload

// The benchmark workloads from the paper's evaluation (§4.2).
type (
	// SmallbankWorkload is the Caliper smallbank banking benchmark.
	SmallbankWorkload = client.SmallbankWorkload
	// DRMWorkload is the Caliper digital-rights-management benchmark.
	DRMWorkload = client.DRMWorkload
	// SplitPayWorkload is the split-payment smallbank variant of Fig 12c.
	SplitPayWorkload = client.SplitPayWorkload
)

// BlockOutcome gathers the validation results of one block from all three
// peers — SW (sequential software), Par (parallel pipelined software) and
// HW (BMac) — with the §4.1 cross-check verdict.
type BlockOutcome struct {
	BlockNum uint64
	TxCount  int
	SW       peer.CommitResult
	Par      peer.CommitResult
	HW       peer.CommitResult
	// Match reports whether flags and commit hash agree across all three
	// peers (the paper found no mismatches; neither should you).
	Match bool
	// HWMatch and ParMatch break the verdict down per peer pair
	// (sequential-vs-BMac and sequential-vs-parallel).
	HWMatch  bool
	ParMatch bool
}

// Testbed is a complete in-process BMac network, the programmatic
// equivalent of the paper's Figure 8 setup: endorser peers per org, a
// Raft-backed ordering service, one software validator peer and one BMac
// peer receiving the same blocks over the two protocols.
type Testbed struct {
	Config    *Config
	Network   *identity.Network
	Endorsers []*endorser.Endorser
	SWPeer    *peer.SWPeer
	ParPeer   *peer.ParallelPeer
	BMacPeer  *peer.BMacPeer
	Orderer   *orderer.Orderer

	registry  *chaincode.Registry
	cluster   *raft.Cluster
	sender    *bmacproto.Sender
	clients   []*client.Driver
	delivery  *delivery.Service
	outcomes  chan BlockOutcome
	stop      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewTestbed builds and starts a network from cfg. Ledgers are created
// under dir. Close the testbed to release resources.
func NewTestbed(cfg *Config, dir string) (*Testbed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Hot-path marshal pooling is a process-wide switch; apply the config's
	// choice before any block is built or delivered.
	wire.SetBufferPooling(!cfg.Hotpath.NoMarshalPool)
	net, err := cfg.BuildNetwork()
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		Config:   cfg,
		Network:  net,
		registry: chaincode.NewRegistry(chaincode.Smallbank{}, chaincode.DRM{}, chaincode.SplitPay{}),
		outcomes: make(chan BlockOutcome, 256),
		stop:     make(chan struct{}),
	}

	// Endorser peers: the first `Endorsers` peers of each org.
	for _, org := range cfg.Orgs {
		for i := 0; i < org.Endorsers; i++ {
			id, err := net.LookupByName(fmt.Sprintf("peer%d.%s", i, org.Name))
			if err != nil {
				return nil, err
			}
			tb.Endorsers = append(tb.Endorsers, endorser.New(id, statedb.NewStore(), tb.registry))
		}
	}
	if len(tb.Endorsers) == 0 {
		return nil, errors.New("bmac: configuration declares no endorser peers")
	}

	// Validator peers, durable per the config: reopening a testbed
	// directory replays each peer's ledger (on top of its checkpoints) so
	// the peers resume at their previous height.
	dopts := peer.DurableOptions{
		CheckpointEvery: cfg.Durability.CheckpointEvery,
		SyncEachBlock:   cfg.Durability.SyncEachBlock,
	}
	valCfg, err := cfg.ValidatorConfig(4)
	if err != nil {
		return nil, err
	}
	tb.SWPeer, err = peer.NewDurableSWPeer(valCfg, statedb.NewStore(), filepath.Join(dir, "sw_validator"), dopts)
	if err != nil {
		return nil, err
	}
	pipeCfg, err := cfg.PipelineConfig()
	if err != nil {
		return nil, err
	}
	// The parallel peer runs over the configured statedb backend (memory,
	// hybrid hardware/host, or sharded); the sequential peer stays on the
	// plain store, so every block is also a cross-backend differential check.
	parKVS, err := cfg.NewKVS()
	if err != nil {
		return nil, err
	}
	tb.ParPeer, err = peer.NewDurableParallelPeer(pipeCfg, parKVS, filepath.Join(dir, "par_validator"), dopts)
	if err != nil {
		return nil, err
	}
	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		return nil, err
	}
	tb.BMacPeer, err = peer.NewBMacPeer(coreCfg, cfg.Arch.DBCapacity, filepath.Join(dir, "bmac_peer"))
	if err != nil {
		return nil, err
	}

	// BMac protocol path (orderer -> BMac peer).
	link := bmacproto.NewMemLink(tb.BMacPeer.Receiver)
	tb.sender = bmacproto.NewSender(identity.NewCache(), link)
	if err := tb.sender.RegisterNetwork(net); err != nil {
		return nil, err
	}

	// Ordering service: single-node Raft, as in the paper's setup.
	tb.cluster = raft.NewCluster(1, 20*time.Millisecond)
	if tb.cluster.WaitForLeader(5*time.Second) == nil {
		return nil, errors.New("bmac: raft leader election timed out")
	}
	ordID, err := net.LookupByName("orderer0." + cfg.Orgs[0].Name)
	if err != nil {
		return nil, fmt.Errorf("bmac: first org needs an orderer: %w", err)
	}
	tb.Orderer = orderer.New(orderer.Config{
		BatchSize:    cfg.Arch.MaxBlockTxs,
		BatchTimeout: 50 * time.Millisecond,
		Channel:      cfg.Channel,
	}, ordID, tb.cluster.Nodes[0])

	// Blocks flow through the delivery service: the orderer appends to
	// the retained window and any registered network peer rides its own
	// non-blocking pipe. The three-way cross-check itself must see every
	// block, so its pipe uses the Wait policy: once the cross-check falls
	// a full window behind, Publish (and through raft's bounded apply
	// channel, Submit) self-throttles instead of overrunning it.
	tb.delivery = delivery.NewService(delivery.Options{Window: cfg.Delivery.Window})
	if err := tb.delivery.Register("crosscheck", delivery.Func(tb.deliver),
		delivery.PeerOptions{Policy: delivery.Wait}); err != nil {
		return nil, err
	}
	tb.Orderer.OnDeliver(tb.delivery.Publish)
	return tb, nil
}

// Delivery exposes the block delivery service, e.g. to register extra
// gossip peers receiving every block of the run.
func (tb *Testbed) Delivery() *delivery.Service { return tb.delivery }

// deliver is the orderer's delivery hook: BMac protocol first (§3.5), then
// the two software peers, then the three-way cross-check and committer
// updates.
func (tb *Testbed) deliver(b *block.Block) error {
	if _, err := tb.sender.SendBlock(b); err != nil {
		return err
	}
	// The two software peers are independent (own stores, own ledgers):
	// validate concurrently so delivery pays max(sw, par), not the sum.
	type parOut struct {
		res peer.CommitResult
		err error
	}
	parCh := make(chan parOut, 1)
	go func() {
		res, err := tb.ParPeer.CommitBlock(b)
		parCh <- parOut{res, err}
	}()
	swRes, err := tb.SWPeer.CommitBlock(b)
	par := <-parCh
	if err != nil {
		return err
	}
	if par.err != nil {
		return par.err
	}
	parRes := par.res
	hwRes, ok := <-tb.BMacPeer.Results()
	if !ok {
		return errors.New("bmac: hardware peer stopped")
	}
	// Committer role: endorser stores track the committed state so later
	// simulations read fresh versions.
	for _, e := range tb.Endorsers {
		if err := client.ApplyBlock(e.Store(), b, swRes.Flags); err != nil {
			return err
		}
	}
	outcome := BlockOutcome{
		BlockNum: b.Header.Number,
		TxCount:  len(b.Envelopes),
		SW:       swRes,
		Par:      parRes,
		HW:       hwRes,
		HWMatch: block.FlagsEqual(swRes.Flags, hwRes.Flags) &&
			string(swRes.CommitHash) == string(hwRes.CommitHash),
		ParMatch: block.FlagsEqual(swRes.Flags, parRes.Flags) &&
			string(swRes.CommitHash) == string(parRes.CommitHash),
	}
	outcome.Match = outcome.HWMatch && outcome.ParMatch
	select {
	case tb.outcomes <- outcome:
	case <-tb.stop:
		return errTestbedClosed
	}
	return nil
}

// errTestbedClosed unblocks the cross-check pipe when the testbed closes
// with unconsumed outcomes; it is not a real delivery failure.
var errTestbedClosed = errors.New("bmac: testbed closed")

// Outcomes delivers one BlockOutcome per committed block, in order.
func (tb *Testbed) Outcomes() <-chan BlockOutcome { return tb.outcomes }

// NewClient creates a workload driver whose transactions are endorsed by
// every endorser peer and submitted to the ordering service.
func (tb *Testbed) NewClient(w Workload, seed int64) (*client.Driver, error) {
	clientOrg := tb.Config.Orgs[0].Name
	id, err := tb.Network.LookupByName("client0." + clientOrg)
	if err != nil {
		return nil, fmt.Errorf("bmac: first org needs a client: %w", err)
	}
	d := client.NewDriver(id, tb.Endorsers, tb.Orderer, w, tb.Config.Channel, seed)
	tb.clients = append(tb.clients, d)
	return d, nil
}

// Bootstrap seeds the genesis state for a workload in every store:
// endorsers, both software peers and the BMac peer's in-hardware database.
func (tb *Testbed) Bootstrap(w Workload) error {
	stores := []statedb.KVS{tb.SWPeer.Validator.Store(), tb.ParPeer.Engine.Store()}
	for _, e := range tb.Endorsers {
		stores = append(stores, e.Store())
	}
	if err := client.Bootstrap(w, tb.registry, stores...); err != nil {
		return err
	}
	return client.BootstrapHardware(w, tb.registry, tb.SWPeer.Validator.Store(), tb.BMacPeer.Proc.DB())
}

// ParallelBackendSummary describes the parallel peer's state-database
// backend and, for a hybrid backend, its cache behaviour and prefetch
// volume — the operational view of the §5 scaling proposal.
func (tb *Testbed) ParallelBackendSummary() string {
	switch kvs := tb.ParPeer.Engine.Store().(type) {
	case *statedb.HybridKVS:
		hits, misses, evictions, hostReads, hostWrites := kvs.Stats()
		return fmt.Sprintf(
			"hybrid (capacity %d): %.1f%% hit rate (%d hits, %d misses, %d evictions), host %d reads / %d writes, %d keys prefetched",
			kvs.Capacity(), kvs.HitRate()*100, hits, misses, evictions,
			hostReads, hostWrites, tb.ParPeer.Engine.PrefetchedKeys())
	case *statedb.ShardedStore:
		reads, writes := kvs.AccessCounts()
		return fmt.Sprintf("sharded (%d stripes): %d reads, %d writes",
			kvs.ShardCount(), reads, writes)
	default:
		reads, writes := kvs.AccessCounts()
		return fmt.Sprintf("memory: %d reads, %d writes", reads, writes)
	}
}

// AwaitBlocks collects n block outcomes or times out.
func (tb *Testbed) AwaitBlocks(n int, timeout time.Duration) ([]BlockOutcome, error) {
	out := make([]BlockOutcome, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case o := <-tb.outcomes:
			out = append(out, o)
		case <-deadline:
			return out, fmt.Errorf("bmac: %d/%d blocks after %v", len(out), n, timeout)
		}
	}
	return out, nil
}

// Close shuts the network down. It reports a fatal ordering error or a
// delivery failure, if one occurred. Safe to call more than once; later
// calls return the first call's result.
func (tb *Testbed) Close() error {
	tb.closeOnce.Do(func() {
		close(tb.stop)
		firstErr := tb.Orderer.Stop()
		if err := tb.delivery.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		// Surface dead delivery pipes, but not the cross-check pipe's
		// own shutdown sentinel; filter per peer — errors.Is on the
		// joined error would discard every real failure alongside it.
		for _, st := range tb.delivery.Stats() {
			if st.Err != nil && !errors.Is(st.Err, errTestbedClosed) && firstErr == nil {
				firstErr = fmt.Errorf("delivery to %s: %w", st.Name, st.Err)
			}
		}
		tb.cluster.Stop()
		if err := tb.BMacPeer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := tb.ParPeer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := tb.SWPeer.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		tb.closeErr = firstErr
	})
	return tb.closeErr
}
