#!/usr/bin/env bash
# doclint.sh — fail when a Go package is missing its doc comment.
#
# Library packages (the root bmac package and everything under internal/)
# must have a file opening with the canonical `// Package <name> ...`
# header. Command packages (cmd/, examples/) must open with a doc comment
# too (`// Command ...` or a scenario description). go vet does not
# enforce either, so CI runs this check alongside it — the README points
# readers at `go doc`, and empty docs defeat that.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
dirs=$(find . -name '*.go' ! -name '*_test.go' ! -path './.git/*' -exec dirname {} \; | sort -u)
for d in $dirs; do
  case "$d" in
  ./cmd/*|./examples/*)
    # package main: any leading doc comment counts.
    if ! head -1 "$d"/*.go | grep -q '^// '; then
      echo "doclint: no leading doc comment in $d" >&2
      fail=1
    fi
    ;;
  *)
    if ! grep -l -E '^// Package [a-zA-Z0-9_]+' "$d"/*.go >/dev/null 2>&1; then
      echo "doclint: no '// Package ...' comment in $d" >&2
      fail=1
    fi
    ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "doclint: add a package comment (see ARCHITECTURE.md for each package's role)" >&2
  exit 1
fi

# Guarded-by annotations are documentation with teeth: a `// guarded by
# <mu>` comment naming a field that does not exist (or one that is not a
# sync.Mutex/RWMutex) would silently guard nothing. bmaclint's
# annotations-only mode validates them without the full access analysis.
if ! go run ./cmd/bmaclint -only guardedby -annotations ./...; then
  echo "doclint: fix the guarded-by annotations above (each must name a sibling sync.Mutex/RWMutex field)" >&2
  exit 1
fi

echo "doclint: every package documented, guarded-by annotations valid"
