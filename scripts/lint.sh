#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate, run locally and by the CI
# `lint` job.
#
# Layers, cheapest first:
#   1. gofmt       — formatting drift fails fast
#   2. go vet      — the full default check set (copylocks, atomic,
#                    loopclosure, printf, ... — everything a stock vet runs)
#   3. doclint     — package doc comments + guarded-by annotation validity
#   4. bmaclint    — the repo's own go/analysis-style suite enforcing the
#                    hot-path contracts: the per-package checks aliasguard
#                    (zero-copy decode vs wire buffer pool), nilsafe (nil
#                    instrument guards), guardedby (mutex discipline) and
#                    errdiscard (no silent error swallowing), plus the
#                    interprocedural module checks sharing one call graph:
#                    lockorder (cycle-free mutex acquisition order),
#                    goroleak (provable goroutine stop paths) and
#                    allocbound (bmaclint:noalloc functions stay
#                    allocation-free per the compiler's escape analysis)
set -euo pipefail
cd "$(dirname "$0")/.."

# Analyzer fixtures under testdata are deliberately written to trip the
# analyzers and carry // want expectation comments; they are not module
# code and are excluded from the formatting sweep.
echo "lint: gofmt"
out=$(gofmt -l . | grep -v 'internal/analysis/testdata/' || true)
if [ -n "$out" ]; then
  echo "lint: gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "lint: go vet (full default check set: copylocks, atomic, loopclosure, ...)"
go vet ./...

echo "lint: doclint"
./scripts/doclint.sh

echo "lint: bmaclint"
go run ./cmd/bmaclint ./...

echo "lint: clean"
