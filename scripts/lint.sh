#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate, run locally and by the CI
# `lint` job.
#
# Layers, cheapest first:
#   1. gofmt       — formatting drift fails fast
#   2. go vet      — the full default check set (copylocks, atomic,
#                    loopclosure, printf, ... — everything a stock vet runs)
#   3. doclint     — package doc comments + guarded-by annotation validity
#   4. bmaclint    — the repo's own go/analysis-style suite enforcing the
#                    hot-path contracts: aliasguard (zero-copy decode vs
#                    wire buffer pool), nilsafe (nil instrument guards),
#                    guardedby (mutex discipline), errdiscard (no silent
#                    error swallowing in module code)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "lint: gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "lint: gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "lint: go vet (full default check set: copylocks, atomic, loopclosure, ...)"
go vet ./...

echo "lint: doclint"
./scripts/doclint.sh

echo "lint: bmaclint"
go run ./cmd/bmaclint ./...

echo "lint: clean"
