#!/usr/bin/env bash
# benchgate.sh — benchmark-regression smoke gate for the commit hot path.
#
# Re-measures the hotpath suite in quick mode and compares allocs/op
# against the committed baseline record (BENCH_hotpath.json at the repo
# root), failing when any benchmark's allocations regress past the
# tolerance. Wall time is deliberately NOT gated — only allocation counts
# are stable enough across CI machines.
#
# The suite includes the telemetry-off gate: block_validate_telemetry_off
# runs block validation with the telemetry plane disabled (nil instruments)
# and must match the committed baseline — the zero-cost-when-off contract
# of the telemetry plane. A baseline predating that row fails fast below.
#
# Usage: scripts/benchgate.sh [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_hotpath.json}"
if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    echo "benchgate: regenerate with: go run ./cmd/bmacbench -exp hotpath -json $baseline" >&2
    exit 1
fi
if ! grep -q '"block_validate_telemetry_off"' "$baseline"; then
    echo "benchgate: baseline $baseline lacks the telemetry-off gate row" >&2
    echo "benchgate: regenerate with: go run ./cmd/bmacbench -exp hotpath -json $baseline" >&2
    exit 1
fi

exec go run ./cmd/bmacbench -exp hotpath -quick -gate "$baseline"
