#!/usr/bin/env bash
# benchgate.sh — benchmark-regression smoke gate for the commit hot path.
#
# Re-measures the hotpath suite in quick mode and compares allocs/op
# against the committed baseline record (BENCH_hotpath.json at the repo
# root), failing when any benchmark's allocations regress past the
# tolerance. Wall time is deliberately NOT gated — only allocation counts
# are stable enough across CI machines.
#
# Usage: scripts/benchgate.sh [baseline.json]
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:-BENCH_hotpath.json}"
if [ ! -f "$baseline" ]; then
    echo "benchgate: baseline $baseline not found" >&2
    echo "benchgate: regenerate with: go run ./cmd/bmacbench -exp hotpath -json $baseline" >&2
    exit 1
fi

exec go run ./cmd/bmacbench -exp hotpath -quick -gate "$baseline"
