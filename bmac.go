// Package bmac is the public API of the Blockchain Machine reproduction: a
// software implementation of the network-attached hardware accelerator for
// Hyperledger Fabric described in "Blockchain Machine: A Network-Attached
// Hardware Accelerator for Hyperledger Fabric" (ICDCS 2022).
//
// The package exposes three layers:
//
//   - Configuration (LoadConfig/DefaultConfig): the YAML configuration of
//     paper §3.5 describing organizations, chaincode endorsement policies
//     and the hardware architecture.
//
//   - Testbed: a complete in-process Fabric-like network — clients,
//     endorser peers, a Raft ordering service, a software validator peer
//     and a BMac peer — with every block cross-checked between the
//     software and hardware validation paths.
//
//   - Experiments (RunExperiment/ExperimentNames): the harness that
//     regenerates every table and figure of the paper's evaluation.
//
// See the examples/ directory for runnable programs built on this API.
package bmac

import (
	"fmt"

	"bmac/internal/chaos"
	"bmac/internal/cluster"
	"bmac/internal/config"
	"bmac/internal/delivery"
	"bmac/internal/experiments"
	"bmac/internal/metrics"
	"bmac/internal/telemetry"
	"bmac/internal/validator"
)

// StageBreakdown is the per-stage/per-operation timing breakdown reported
// by the software validator peers (sequential and parallel pipelined).
type StageBreakdown = validator.Breakdown

// Config is the BMac network/architecture configuration (paper §3.5).
type Config = config.Config

// ArchSpec, OrgSpec, ChaincodeSpec, PipelineSpec, StateDBSpec and
// DeliverySpec are configuration components.
type (
	ArchSpec      = config.ArchSpec
	OrgSpec       = config.OrgSpec
	ChaincodeSpec = config.ChaincodeSpec
	PipelineSpec  = config.PipelineSpec
	StateDBSpec   = config.StateDBSpec
	DeliverySpec  = config.DeliverySpec
)

// LoadConfig reads a YAML configuration file.
func LoadConfig(path string) (*Config, error) { return config.Load(path) }

// ParseConfig parses YAML configuration bytes.
func ParseConfig(raw []byte) (*Config, error) { return config.Parse(raw) }

// DefaultConfig returns the paper's default experimental configuration
// (two orgs, smallbank with a 2-outof-2 policy, an 8x2 architecture).
func DefaultConfig() *Config { return config.Default() }

// ExperimentNames lists the reproducible experiments (fig3..fig13, table1,
// headline, ablations).
func ExperimentNames() []string { return experiments.Names() }

// ExperimentTitle returns the display title for an experiment id.
func ExperimentTitle(name string) string { return experiments.Titles[name] }

// ExperimentOptions tune experiment cost.
type ExperimentOptions struct {
	// Rounds is the number of measured validations per data point
	// (default 3).
	Rounds int
	// Quick shrinks parameter sweeps for smoke testing.
	Quick bool
}

// RunExperiment regenerates one of the paper's tables or figures and
// returns the result as a printable table.
func RunExperiment(name string, opts ExperimentOptions) (*metrics.Table, error) {
	r, err := experiments.NewRunner(experiments.Options{
		Rounds: opts.Rounds,
		Quick:  opts.Quick,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment runner: %w", err)
	}
	return r.Run(name)
}

// Table is a printable experiment result.
type Table = metrics.Table

// HotpathRecord is the machine-readable result of the hotpath benchmark
// suite — the tracked perf trajectory written to BENCH_hotpath.json.
type HotpathRecord = experiments.HotpathRecord

// RunHotpathRecord runs the hotpath suite once, returning both the
// printable table and the machine-readable record (so `bmacbench -exp
// hotpath -json` measures once, not twice).
func RunHotpathRecord(opts ExperimentOptions) (*Table, *HotpathRecord, error) {
	env, err := experiments.NewEnv()
	if err != nil {
		return nil, nil, err
	}
	rec, err := experiments.MeasureHotpath(env, experiments.Options{Rounds: opts.Rounds, Quick: opts.Quick})
	if err != nil {
		return nil, nil, err
	}
	return rec.Table(), rec, nil
}

// LoadHotpathRecord reads a BENCH_hotpath.json baseline.
func LoadHotpathRecord(path string) (*HotpathRecord, error) {
	return experiments.LoadHotpathRecord(path)
}

// Cluster harness: the open-loop load driver + non-blocking delivery
// service stack (orderer -> raft -> delivery -> N peers), reporting
// throughput, per-tx tail latency and per-peer delivery statistics.
type (
	// ClusterOptions parameterize a cluster run (internal/cluster).
	ClusterOptions = cluster.Options
	// ClusterResult is the cluster run report.
	ClusterResult = cluster.Result
	// ClusterPeerReport is one software peer's summary.
	ClusterPeerReport = cluster.PeerReport
	// ClusterChurnReport summarizes a churn scenario (kill, recovery
	// height, ledger catch-up volume).
	ClusterChurnReport = cluster.ChurnReport
	// ClusterAdversaryReport summarizes the hostile traffic injected
	// alongside the honest load and how much of it was flag-rejected.
	ClusterAdversaryReport = cluster.AdversaryReport
	// ClusterChaosReport summarizes an injected chaos fault (partition,
	// wire corruption, slow disk or raft leader kill).
	ClusterChaosReport = cluster.ChaosReport
	// DeliveryPeerStats is a delivery pipe snapshot.
	DeliveryPeerStats = delivery.PeerStats
	// DeliveryPolicy selects what happens to a peer that overruns the
	// retained block window.
	DeliveryPolicy = delivery.Policy
	// LatencySummary is the p50/p95/p99 tail digest.
	LatencySummary = metrics.LatencySummary
)

// Delivery overrun policies.
const (
	// DeliveryDisconnect kills the pipe of an overrunning peer.
	DeliveryDisconnect = delivery.Disconnect
	// DeliveryDrop skips and counts the lost blocks, keeping the peer.
	DeliveryDrop = delivery.DropBlocks
)

// Cluster validation path modes.
const (
	ClusterSequential = cluster.Sequential
	ClusterPipelined  = cluster.Pipelined
	ClusterHybrid     = cluster.Hybrid
)

// ClusterModes lists the validation path modes.
func ClusterModes() []string { return cluster.Modes() }

// Chaos fault names accepted by ClusterOptions.Fault.
const (
	FaultLeaderKill = chaos.FaultLeaderKill
	FaultPartition  = chaos.FaultPartition
	FaultCorruption = chaos.FaultCorruption
	FaultSlowDisk   = chaos.FaultSlowDisk
)

// ChaosFaults lists the chaos fault names accepted by ClusterOptions.Fault.
func ChaosFaults() []string { return chaos.Faults() }

// FormatTPS renders a throughput with thousands separators, e.g. "38,400".
func FormatTPS(tps float64) string { return metrics.FormatTPS(tps) }

// ParseDeliveryPolicy parses a delivery overrun policy name
// ("disconnect" or "drop").
func ParseDeliveryPolicy(s string) (DeliveryPolicy, error) { return delivery.ParsePolicy(s) }

// RunCluster executes one cluster experiment end to end; peers keep
// their ledgers under dir.
func RunCluster(cfg *Config, opts ClusterOptions, dir string) (*ClusterResult, error) {
	return cluster.Run(cfg, opts, dir)
}

// Telemetry plane: the unified metrics registry, the per-block lifecycle
// flight recorder and the live /metrics + /debug/pprof + /trace HTTP server
// (internal/telemetry). A Config's TelemetrySpec turns the plane on; every
// instrument is nil-safe, so a disabled plane costs one predicted branch
// per hot-path event.
type (
	// TelemetrySpec is the `telemetry:` configuration section.
	TelemetrySpec = config.TelemetrySpec
	// TelemetryRegistry is the process metrics registry.
	TelemetryRegistry = telemetry.Registry
	// TraceRecorder is the per-block lifecycle flight recorder.
	TraceRecorder = telemetry.Recorder
	// TraceBudget is the per-stage latency budget aggregated from a trace.
	TraceBudget = telemetry.Budget
	// TelemetryServer serves /metrics, /debug/pprof/* and /trace.
	TelemetryServer = telemetry.Server
)

// NewTraceRecorder creates a flight recorder (inject via
// ClusterOptions.Recorder to trace a cluster run and serve /trace live).
func NewTraceRecorder() *TraceRecorder { return telemetry.NewRecorder() }

// ServeTelemetry binds addr and serves the registry's /metrics exposition,
// Go's /debug/pprof/* handlers and the recorder's /trace JSONL dump (either
// may be nil). Close the returned server when done.
func ServeTelemetry(addr string, reg *TelemetryRegistry, rec *TraceRecorder) (*TelemetryServer, error) {
	return telemetry.NewServer(addr, reg, rec)
}
