package bmac

import (
	"fmt"
	"time"

	"bmac/internal/hwsim"
	"bmac/internal/policy"
)

// SimResult is the outcome of simulating one architecture on one workload
// shape: steady-state throughput, latencies and FPGA utilization.
type SimResult struct {
	Arch         string
	Throughput   float64 // transactions per second
	BlockLatency time.Duration
	TxLatency    time.Duration
	EndsVerified int // endorsement verifications for the whole block
	EndsSkipped  int // endorsements skipped by short-circuit evaluation
	LUTPct       float64
	FFPct        float64
	BRAMPct      float64
	FitsU250     bool
	EngineCount  int
}

// SimWorkload describes a uniform workload for architecture simulation.
type SimWorkload struct {
	// Policy is the chaincode endorsement policy (e.g. "2of3").
	Policy string
	// BlockSize is the number of transactions per block.
	BlockSize int
	// Reads and Writes are the per-transaction database request counts.
	Reads  int
	Writes int
}

// SimulateArchitecture runs the calibrated timing simulator (the paper's
// high-level simulator, §4.1) for an NxE architecture on a workload,
// returning performance and resource estimates. Clients gather one
// endorsement per organization referenced by the policy, as in the paper's
// experiments.
func SimulateArchitecture(txValidators, vsccEngines int, w SimWorkload) (SimResult, error) {
	pol, err := policy.Parse(w.Policy)
	if err != nil {
		return SimResult{}, fmt.Errorf("simulate architecture: %w", err)
	}
	if w.BlockSize < 1 {
		return SimResult{}, fmt.Errorf("simulate architecture: block size %d", w.BlockSize)
	}
	cfg := hwsim.Config{TxValidators: txValidators, VSCCEngines: vsccEngines}
	timing := hwsim.Simulate(cfg, policy.Compile(pol),
		hwsim.UniformTxProfile(w.BlockSize, pol.MaxEndorsements(), w.Reads, w.Writes))
	u := hwsim.Resources(txValidators, vsccEngines)
	return SimResult{
		Arch:         cfg.String(),
		Throughput:   timing.Throughput(w.BlockSize),
		BlockLatency: timing.BlockLatency(),
		TxLatency:    timing.TxLatency,
		EndsVerified: timing.EndsVerified,
		EndsSkipped:  timing.EndsSkipped,
		LUTPct:       u.LUTPct,
		FFPct:        u.FFPct,
		BRAMPct:      u.BRAMPct,
		FitsU250:     u.FitsU250(),
		EngineCount:  u.Engines,
	}, nil
}
